"""Layer 2 of the runner: the shared trial loop and the per-cell result.

Every back-to-back-trials experiment (FCT, multihop, RDMA reordering)
used to hand-roll the same launch → watchdog → deadline → collect loop;
:class:`TrialHarness` owns it once.  Single-flow experiments (goodput)
share :func:`run_until_complete` for the watchdog-bounded drive loop.

:class:`CellResult` is the unified schema every experiment cell emits:
scalar ``metrics`` for tables, larger ``series`` for distributions, the
spec that produced it, and the wall-clock cost.  Its
:meth:`~CellResult.canonical_json` excludes the wall clock, so "same
seed ⇒ byte-identical result" is a testable property and parallel sweep
output can be diffed against serial output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["CellResult", "TrialHarness", "run_until_complete"]

#: A trial launcher: given the trial index and the completion callback, set
#: up the flow and return ``(start, abort)``.  ``start`` begins the trial
#: (called after the harness has armed the deadline watchdog, preserving
#: event order); ``abort`` (or None) tears the trial down if the deadline
#: fires — e.g. unregistering host packet handlers.
TrialLauncher = Callable[[int, Callable[[Any], None]],
                         Tuple[Callable[[], None], Optional[Callable[[], None]]]]


def _jsonable(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


@dataclass
class CellResult:
    """What one executed experiment cell produced.

    ``metrics`` holds scalar summary values (table cells), ``series``
    holds list-valued data (FCT samples, timeline arrays).  ``wall_s`` is
    the only non-deterministic field and is excluded from the canonical
    form.
    """

    cell_id: str
    spec: Dict[str, Any]
    metrics: Dict[str, Any] = field(default_factory=dict)
    series: Dict[str, list] = field(default_factory=dict)
    wall_s: float = 0.0
    #: which execution backend produced this cell ("packet"/"fastpath");
    #: deterministic, so part of the canonical form.
    backend: str = "packet"
    #: wall-clock phase breakdown (setup/run/collect/engine...); like
    #: ``wall_s``, non-deterministic, so excluded from the canonical form
    #: and from serialized output when empty.
    timings: Dict[str, float] = field(default_factory=dict)
    #: attached diagnostic artifacts (timeline series, span summaries);
    #: execution-dependent, so excluded from the canonical form and from
    #: serialized output when empty.
    artifacts: Dict[str, Any] = field(default_factory=dict)

    def canonical_json(self) -> str:
        """Deterministic serialization: same seed ⇒ byte-identical."""
        # Diagnostics never perturb the canonical form: ``spec.obs`` is
        # dropped (like grid_key) so an instrumented run stays
        # byte-identical to the plain run it observes.
        spec = self.spec
        if isinstance(spec, dict) and "obs" in spec:
            spec = {k: v for k, v in spec.items() if k != "obs"}
        data = {
            "cell_id": self.cell_id,
            "spec": spec,
            "metrics": self.metrics,
            "series": self.series,
            "backend": self.backend,
        }
        return json.dumps(data, sort_keys=True, separators=(",", ":"),
                          default=_jsonable)

    def to_json(self) -> str:
        """One checkpoint/JSONL line (wall clock included)."""
        data = {
            "cell_id": self.cell_id,
            "spec": self.spec,
            "metrics": self.metrics,
            "series": self.series,
            "wall_s": self.wall_s,
            "backend": self.backend,
        }
        if self.timings:
            data["timings"] = self.timings
        if self.artifacts:
            data["artifacts"] = self.artifacts
        return json.dumps(data, sort_keys=True, separators=(",", ":"),
                          default=_jsonable)

    @classmethod
    def from_json(cls, line: str) -> "CellResult":
        data = json.loads(line)
        return cls(
            cell_id=data["cell_id"],
            spec=data["spec"],
            metrics=data.get("metrics", {}),
            series=data.get("series", {}),
            wall_s=data.get("wall_s", 0.0),
            backend=data.get("backend", "packet"),
            timings=data.get("timings", {}),
            artifacts=data.get("artifacts", {}),
        )

    def row(self) -> Dict[str, Any]:
        """Scalar metrics prefixed by the cell id, for table rendering;
        backend and wall clock ride along so fastpath-vs-packet speedups
        read straight off a sweep table or checkpoint."""
        return {"cell": self.cell_id, **{
            k: v for k, v in self.metrics.items()
            if isinstance(v, (int, float, str, bool))
        }, "backend": self.backend, "wall_s": round(self.wall_s, 4)}


class TrialHarness:
    """Runs ``n_trials`` back-to-back flows on one simulator.

    The loop: launch trial *i*; when it completes (or its deadline
    watchdog fires), wait ``inter_trial_gap_ns`` and launch trial *i+1*;
    stop after the last trial or at ``safety_ns`` (a wedged-experiment
    guard — LinkGuardian's self-replenishing queues keep the event heap
    non-empty forever, so a plain run-to-empty would never return).
    """

    def __init__(
        self,
        sim,
        n_trials: int,
        launch_trial: TrialLauncher,
        *,
        inter_trial_gap_ns: int = 20_000,
        trial_deadline_ns: Optional[int] = None,
        safety_ns: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.n_trials = n_trials
        self.launch_trial = launch_trial
        self.inter_trial_gap_ns = inter_trial_gap_ns
        self.trial_deadline_ns = trial_deadline_ns
        self.safety_ns = safety_ns
        self.records: List[Any] = []
        self.incomplete = 0
        self._watchdog = None
        self._done = False

    def _launch(self, trial: int) -> None:
        if trial >= self.n_trials:
            self._done = True
            return

        def finished(record) -> None:
            if self._watchdog is not None:
                self._watchdog.cancel()
                self._watchdog = None
            self.records.append(record)
            self.sim.schedule(self.inter_trial_gap_ns, self._launch, trial + 1)

        start, abort = self.launch_trial(trial, finished)

        if self.trial_deadline_ns is not None:
            def give_up() -> None:
                # A pathologically stuck trial (chained RTO backoff) is
                # recorded as incomplete rather than wedging the run.
                self._watchdog = None
                self.incomplete += 1
                if abort is not None:
                    abort()
                self.sim.schedule(self.inter_trial_gap_ns, self._launch, trial + 1)

            self._watchdog = self.sim.schedule(self.trial_deadline_ns, give_up)
        start()

    def run(self) -> List[Any]:
        """Drive the simulator until the last trial finishes; return the
        completion records in trial order."""
        self.sim.schedule(0, self._launch, 0)
        while not self._done and self.sim.peek() is not None:
            if self.safety_ns is not None and self.sim.now > self.safety_ns:
                break
            self.sim.step()
        return self.records


def run_until_complete(sim, is_done: Callable[[], bool], deadline_ns: int) -> bool:
    """Step ``sim`` until ``is_done()`` or the deadline; True if done.

    The single-flow counterpart of :class:`TrialHarness`: goodput-style
    experiments run one long transfer under a watchdog.
    """
    state = {"stop": False}

    def watchdog() -> None:
        state["stop"] = True

    guard = sim.schedule(int(deadline_ns), watchdog)
    while not is_done() and not state["stop"] and sim.peek() is not None:
        sim.step()
    guard.cancel()
    return is_done()
