"""Unified experiment-runner layer: specs → harness → sweeps.

Three layers (see DESIGN.md "Runner layer"):

1. :class:`ExperimentSpec` / :class:`SweepSpec` — declarative,
   serializable descriptions of one evaluation-grid cell / one grid;
2. :class:`TrialHarness` + :class:`CellResult` — the shared
   launch/watchdog/deadline/collect loop and the unified per-cell result
   schema every experiment emits;
3. :class:`SweepRunner` — serial or multi-process execution with
   deterministic per-cell seeding and JSONL checkpoint/resume.

Typical usage::

    sweep = SweepSpec(
        name="fig10",
        base=ExperimentSpec(kind="fct", flow_size=143, n_trials=3000, seed=10),
        axes={"transport": ["dctcp", "rdma"],
              "scenario": ["noloss", "loss", "lg", "lgnb"]},
    )
    results = SweepRunner(sweep, workers=4, checkpoint="fig10.jsonl").run()
"""

from .cells import experiment_kinds, register, run_cell
from .harness import CellResult, TrialHarness, run_until_complete
from .spec import ExperimentSpec, SweepSpec
from .sweep import SweepRunner, load_checkpoint

__all__ = [
    "ExperimentSpec", "SweepSpec",
    "CellResult", "TrialHarness", "run_until_complete",
    "register", "run_cell", "experiment_kinds",
    "SweepRunner", "load_checkpoint",
]
