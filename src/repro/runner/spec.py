"""Layer 1 of the runner: declarative experiment and sweep specs.

An :class:`ExperimentSpec` names one cell of the paper's evaluation grid
— the (transport, scenario, loss rate, flow size, trial count,
LinkGuardian config) tuple that every ``run_*`` function used to take as
ad-hoc kwargs.  Specs are frozen, serializable, and carry a stable
:meth:`~ExperimentSpec.cell_id`, so a cell can be shipped to a worker
process, checkpointed to disk, and recognised again on resume.

A :class:`SweepSpec` is a cartesian product of axes over a base spec —
one paper figure is typically one sweep (Figure 10 = transports ×
scenarios).  When the sweep carries its own ``seed``, every cell gets a
deterministic per-cell seed derived via :class:`~repro.core.rng.RngFactory`
from the cell's grid coordinates, so results are independent of execution
order and identical between serial and parallel runs.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional

from ..core.rng import RngFactory

__all__ = ["ExperimentSpec", "SweepSpec"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of an evaluation grid.

    The first-class fields are the knobs shared by (nearly) every
    experiment; anything kind-specific rides in ``params`` and
    LinkGuardianConfig overrides in ``lg`` (keyword arguments to
    ``LinkGuardianConfig.for_link_speed``, e.g. the Table 2 ablation's
    ``ordered`` / ``tail_loss_detection`` toggles).
    """

    kind: str
    transport: str = "dctcp"
    scenario: str = "lg"
    loss_rate: float = 1e-3
    flow_size: int = 143
    n_trials: int = 1_000
    rate_gbps: float = 100.0
    seed: int = 1
    #: execution backend: "packet" (the event-driven engine), "fastpath"
    #: (the vectorized analytic models in ``repro.fastpath``) or "hybrid"
    #: (analytic between losses, packet windows around them —
    #: ``repro.fastpath.splice``)
    backend: str = "packet"
    lg: Dict[str, Any] = field(default_factory=dict)
    params: Dict[str, Any] = field(default_factory=dict)
    #: observability options for the run: ``{"spans": True, "timeline":
    #: {...}, "trace": False}``.  Diagnostics-only — omitted from the
    #: serialized form when empty so existing cell ids stay stable.
    obs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "kind": self.kind,
            "transport": self.transport,
            "scenario": self.scenario,
            "loss_rate": self.loss_rate,
            "flow_size": self.flow_size,
            "n_trials": self.n_trials,
            "rate_gbps": self.rate_gbps,
            "seed": self.seed,
            "backend": self.backend,
            "lg": dict(self.lg),
            "params": dict(self.params),
        }
        if self.obs:
            data["obs"] = dict(self.obs)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ExperimentSpec fields: {sorted(unknown)}")
        return cls(**data)

    def canonical_json(self) -> str:
        """Deterministic serialization (sorted keys, no whitespace).

        ``obs`` is excluded: instrumentation is diagnostics-only, so an
        instrumented cell keeps the plain cell's identity (same
        ``cell_id``, same checkpoint row key).
        """
        data = self.to_dict()
        data.pop("obs", None)
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    def grid_key(self) -> str:
        """The cell's coordinates excluding ``seed`` — what per-cell seeds
        are derived *from*, so the derivation cannot be circular.
        ``backend`` is excluded too: the same grid cell on the packet and
        fastpath backends derives the same seed, which is what makes
        cross-validation grids exactly comparable."""
        data = self.to_dict()
        del data["seed"]
        del data["backend"]
        data.pop("obs", None)  # diagnostics never perturb derived seeds
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    def cell_id(self) -> str:
        """Stable human-readable id: grid coordinates plus a short digest
        covering every field (params and lg overrides included)."""
        digest = hashlib.sha256(self.canonical_json().encode()).hexdigest()[:8]
        return (
            f"{self.kind}-{self.transport}-{self.scenario}"
            f"-f{self.flow_size}-p{self.loss_rate:g}-s{self.seed}-{digest}"
        )

    def with_(self, **overrides: Any) -> "ExperimentSpec":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def with_axis(self, axis: str, value: Any) -> "ExperimentSpec":
        """Set one axis: a field name, or a dotted ``params.x`` / ``lg.x``."""
        if axis.startswith("params."):
            return replace(self, params={**self.params, axis[len("params."):]: value})
        if axis.startswith("lg."):
            return replace(self, lg={**self.lg, axis[len("lg."):]: value})
        if axis not in {f.name for f in fields(self)}:
            raise ValueError(
                f"unknown axis {axis!r}; use a spec field or params.X / lg.X"
            )
        return replace(self, **{axis: value})


@dataclass
class SweepSpec:
    """A named cartesian product of axes over a base spec.

    ``axes`` maps an axis name (spec field, or dotted ``params.x`` /
    ``lg.x``) to the list of values it sweeps.  Cells are enumerated in
    row-major order of the axes dict, which fixes the canonical result
    order regardless of how execution is scheduled.

    ``seed``: when ``None`` every cell keeps ``base.seed`` (the paper's
    figures run all scenarios on one seed); when set, each cell's seed is
    derived from ``(seed, cell grid coordinates)``.
    """

    name: str
    base: ExperimentSpec
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    seed: Optional[int] = None

    def cells(self) -> List[ExperimentSpec]:
        names = list(self.axes)
        out: List[ExperimentSpec] = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            spec = self.base
            for axis, value in zip(names, combo):
                spec = spec.with_axis(axis, value)
            if self.seed is not None:
                spec = spec.with_(
                    seed=RngFactory(self.seed).child_seed(spec.grid_key())
                )
            out.append(spec)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        return cls(
            name=data["name"],
            base=ExperimentSpec.from_dict(data["base"]),
            axes={k: list(v) for k, v in data.get("axes", {}).items()},
            seed=data.get("seed"),
        )
