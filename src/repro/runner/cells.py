"""Dispatch an :class:`~repro.runner.spec.ExperimentSpec` to its experiment.

Each experiment registers under a ``kind``; :func:`run_cell` resolves the
kind, runs the cell, and normalises the outcome into a
:class:`~repro.runner.harness.CellResult`.  Experiment modules are
imported lazily inside each runner so importing ``repro.runner`` never
drags in (or cycles with) ``repro.experiments``.

Common field mapping: ``spec.scenario`` carries the per-kind protection
variant ("noloss"/"loss"/"lg"/"lgnb" for FCT and multihop, the Table 3
scheme for goodput, "lg"/"lgnb" ordering for the stress test);
``spec.lg`` carries ``LinkGuardianConfig.for_link_speed`` overrides;
everything else kind-specific rides in ``spec.params``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from ..obs.profile import PhaseTimer
from .harness import CellResult
from .spec import ExperimentSpec

__all__ = ["RunContext", "register", "run_cell", "experiment_kinds"]


@dataclass
class RunContext:
    """Per-cell execution context handed to every registered runner.

    ``obs`` is the cell's :class:`~repro.obs.Observability` (built from
    ``spec.obs``, or None for an uninstrumented cell); runners that can
    thread it into their experiment should.  ``phases`` accumulates
    wall-clock phase timings that end up in ``CellResult.timings``.
    """

    obs: Optional[Any] = None
    phases: PhaseTimer = field(default_factory=PhaseTimer)


_RUNNERS: Dict[str, Callable[[ExperimentSpec, RunContext], CellResult]] = {}


def register(kind: str):
    """Class-of-experiment decorator: ``@register("fct")``."""
    def decorate(fn):
        _RUNNERS[kind] = fn
        return fn
    return decorate


def experiment_kinds() -> List[str]:
    return sorted(_RUNNERS)


def _build_obs(options: Dict[str, Any]):
    """Materialise ``spec.obs`` into an Observability (None when empty).

    Recognised keys: ``trace`` (bool, default True), ``spans`` (bool),
    ``timeline`` (True or TimelineRecorder kwargs).
    """
    if not options:
        return None
    from ..obs import Observability

    return Observability(
        tracing=bool(options.get("trace", True)),
        spans=bool(options.get("spans", False)),
        timeline=options.get("timeline"),
    )


def run_cell(spec: Union[ExperimentSpec, dict],
             obs: Optional[Any] = None) -> CellResult:
    """Run one cell and return its unified result (wall clock attached).

    ``spec.backend`` selects the execution engine: ``"packet"`` runs the
    registered event-driven experiment, ``"fastpath"`` routes to the
    vectorized analytic backend (:mod:`repro.fastpath`), and
    ``"hybrid"`` to the splicing backend (:mod:`repro.fastpath.splice`)
    that advances analytically between corruption events and simulates
    packet-engine windows around them.  ``obs`` overrides the
    Observability built from ``spec.obs`` (CLI use).
    """
    if isinstance(spec, dict):
        spec = ExperimentSpec.from_dict(spec)
    if spec.backend == "fastpath":
        from ..fastpath.backend import run_fastpath_cell

        return run_fastpath_cell(spec)
    if spec.backend == "hybrid":
        from ..fastpath.splice import run_hybrid_cell

        return run_hybrid_cell(spec)
    if spec.backend != "packet":
        raise ValueError(
            f"unknown backend {spec.backend!r}; "
            f"known: packet, fastpath, hybrid")
    try:
        runner = _RUNNERS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown experiment kind {spec.kind!r}; "
            f"known: {experiment_kinds()}"
        ) from None
    ctx = RunContext(obs=obs if obs is not None else _build_obs(spec.obs))
    started = time.perf_counter()
    result = runner(spec, ctx)
    result.wall_s = time.perf_counter() - started
    _attach_diagnostics(result, ctx)
    return result


def _attach_diagnostics(result: CellResult, ctx: RunContext) -> None:
    """Phase timings and obs artifacts onto the result (never canonical)."""
    timings = ctx.phases.timings()
    timings["total_s"] = round(result.wall_s, 6)
    if ctx.obs is not None:
        engine = ctx.obs.registry.snapshot().get("engine")
        if isinstance(engine, dict):
            # Wall-clock the kernel spent inside run() — the engine hot
            # loop (TrialHarness-driven experiments step() instead, so
            # their hot loop is the "run" phase).
            timings["engine_run_s"] = round(engine.get("wall_seconds", 0.0), 6)
        if ctx.obs.timeline is not None:
            ctx.obs.timeline.stop()
            result.artifacts["timeline"] = ctx.obs.timeline.series()
        if ctx.obs.spans.enabled:
            result.artifacts["spans"] = {
                "started": ctx.obs.spans.started,
                "dropped": ctx.obs.spans.dropped,
                "episodes": len(ctx.obs.spans.trees()),
            }
    result.timings = timings


def _result(spec: ExperimentSpec, metrics: dict, series: dict = None) -> CellResult:
    return CellResult(
        cell_id=spec.cell_id(),
        spec=spec.to_dict(),
        metrics=metrics,
        series=series or {},
        backend=spec.backend,
    )


def _lg_config(spec: ExperimentSpec):
    """Materialise spec.lg overrides; None keeps the experiment default."""
    if not spec.lg:
        return None
    from ..linkguardian.config import LinkGuardianConfig

    return LinkGuardianConfig.for_link_speed(spec.rate_gbps, **spec.lg)


@register("fct")
def _run_fct(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    from ..experiments.fct import run_fct_experiment

    result = run_fct_experiment(
        transport=spec.transport,
        flow_size=spec.flow_size,
        n_trials=spec.n_trials,
        scenario=spec.scenario,
        rate_gbps=spec.rate_gbps,
        loss_rate=spec.loss_rate,
        seed=spec.seed,
        lg_config=_lg_config(spec),
        obs=ctx.obs,
        phases=ctx.phases,
        **spec.params,
    )
    metrics = result.summary()
    metrics["affected"] = sum(
        1 for r in result.records if r.retransmissions or r.timeouts
    )
    return _result(spec, metrics, {"fcts_us": result.fcts_us.tolist()})


@register("goodput")
def _run_goodput(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    from ..experiments.goodput import run_goodput

    row = run_goodput(
        scheme=spec.scenario,
        loss_rate=spec.loss_rate,
        rate_gbps=spec.rate_gbps,
        seed=spec.seed,
        **spec.params,
    )
    return _result(spec, row)


@register("multihop")
def _run_multihop(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    from ..experiments.multihop import run_multihop_fct

    row = run_multihop_fct(
        transport=spec.transport,
        flow_size=spec.flow_size,
        n_trials=spec.n_trials,
        loss_rate=spec.loss_rate,
        lg_active=spec.scenario != "loss",
        ordered=spec.scenario != "lgnb",
        seed=spec.seed,
        **spec.params,
    )
    return _result(spec, row)


@register("stress")
def _run_stress(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    from ..experiments.stress import run_stress_test

    config = None
    if spec.lg:
        from ..linkguardian.config import LinkGuardianConfig

        # params.target_loss_rate outranks the lg override, mirroring the
        # fastpath grid's precedence (params > lg > default).
        overrides = {"ordered": spec.scenario != "lgnb", **spec.lg}
        if "target_loss_rate" in spec.params:
            overrides["target_loss_rate"] = spec.params["target_loss_rate"]
        config = LinkGuardianConfig.for_link_speed(spec.rate_gbps, **overrides)
    result = run_stress_test(
        rate_gbps=spec.rate_gbps,
        loss_rate=spec.loss_rate,
        ordered=spec.scenario != "lgnb",
        seed=spec.seed,
        config=config,
        obs=ctx.obs,
        **spec.params,
    )
    metrics = dict(result.row())
    metrics.update(
        injected=result.injected,
        delivered=result.delivered,
        loss_events=result.loss_events,
        recovered=result.recovered,
        timeouts=result.timeouts,
        recirc_tx_pct=result.recirc_overhead_tx_percent,
        recirc_rx_pct=result.recirc_overhead_rx_percent,
    )
    return _result(spec, metrics, {"retx_delays_us": result.retx_delays_us})


@register("timeline")
def _run_timeline(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    from ..experiments.timeline import run_timeline

    result = run_timeline(
        transport=spec.transport,
        rate_gbps=spec.rate_gbps,
        loss_rate=spec.loss_rate,
        seed=spec.seed,
        obs=ctx.obs,
        **spec.params,
    )
    metrics = {
        "clean_gbps": result.phase_mean_rate(2, result.corruption_start_ms),
        "loss_gbps": result.phase_mean_rate(
            result.corruption_start_ms + 2, result.lg_start_ms),
        "lg_gbps": result.phase_mean_rate(
            result.lg_start_ms + 4, float(result.times_ms[-1])),
        "overflow_drops": result.overflow_drops,
        "completed_bytes": result.completed_bytes,
    }
    series = {
        "times_ms": result.times_ms.tolist(),
        "send_rate_gbps": result.send_rate_gbps.tolist(),
        "qdepth_kb": result.qdepth_kb.tolist(),
        "rx_buffer_kb": result.rx_buffer_kb.tolist(),
        "e2e_retx": result.e2e_retx.tolist(),
    }
    return _result(spec, metrics, series)


@register("rdma_reorder")
def _run_rdma_reorder(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    from ..experiments.rdma_future import run_rdma_case

    row = run_rdma_case(
        case=spec.params.get("case", "lgnb+sr"),
        flow_size=spec.flow_size,
        n_trials=spec.n_trials,
        loss_rate=spec.loss_rate,
        rate_gbps=spec.rate_gbps,
        seed=spec.seed,
    )
    return _result(spec, row)


@register("deployment")
def _run_deployment(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    from ..experiments.deployment import run_deployment_comparison

    comparison = run_deployment_comparison(seed=spec.seed, **spec.params)
    return _result(spec, comparison.summary())


@register("incremental")
def _run_incremental(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    from ..experiments.incremental import run_incremental_deployment

    fraction = spec.params.get("fraction", 0.5)
    params = {k: v for k, v in spec.params.items() if k != "fraction"}
    rows = run_incremental_deployment(
        fractions=(fraction,), seed=spec.seed, **params)
    return _result(spec, rows[0])


@register("fleet_shard")
def _run_fleet_shard(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    """One shard of a fleet campaign: generate that link range's episodes.

    ``spec.params`` carries the serialized campaign plus the shard index;
    the fleet rollup (``repro.fleet.campaign.run_fleet_campaign``) merges
    the shards' episode lists back into one timeline.
    """
    from ..fleet.campaign import FleetCampaignSpec, run_shard, shard_bounds

    campaign = FleetCampaignSpec.from_dict(spec.params["campaign"])
    shard = int(spec.params.get("shard", 0))
    episodes = run_shard(campaign, shard)
    lo, hi = shard_bounds(campaign.fleet.n_links, campaign.n_shards, shard)
    metrics = {
        "shard": shard,
        "links_lo": lo,
        "links_hi": hi,
        "n_links": hi - lo,
        "n_episodes": len(episodes),
    }
    result = _result(spec, metrics,
                     {"episodes": [e.to_dict() for e in episodes]})
    # Longitudinal per-shard health series; rides in artifacts (not the
    # canonical form) so campaign byte-identity stays shard-independent.
    from ..fleet.campaign import shard_timeline

    result.artifacts["timeline"] = shard_timeline(campaign, episodes)
    return result


@register("lifecycle_chunk")
def _run_lifecycle_chunk(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    """One time chunk of a lifecycle replay: its day range's SLO columns.

    ``spec.params`` carries the serialized replay plus the chunk index;
    the lifecycle rollup (``repro.lifecycle.replay.run_replay``) merges
    the chunks' disjoint day ranges back into one longitudinal series.
    The replay-global audit counters ride in ``series["counts"]`` —
    identical in every chunk, so the merge reads them from any one.
    """
    from ..lifecycle.replay import ReplaySpec, run_chunk

    replay = ReplaySpec.from_dict(spec.params["replay"])
    chunk = int(spec.params.get("chunk", 0))
    out = run_chunk(replay, chunk)
    return _result(spec, dict(out["chunk"]),
                   {"days": out["days"], "counts": out["counts"]})


@register("checker")
def _run_checker(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    """Conformance checking as a runner cell.

    With ``spec.params["scenario"]`` present, runs that one fault
    scenario under the invariant checker; otherwise fuzzes
    ``spec.n_trials`` random scenarios from ``spec.seed``.  Base config
    tweaks ride in ``spec.params["check"]``; ``spec.lg`` overrides the
    LinkGuardian config either way.
    """
    from ..checker.fuzz import run_fuzz
    from ..checker.scenarios import CheckConfig, FaultScenario, run_scenario

    check = dict(spec.params.get("check", {}))
    if spec.lg:
        check["lg"] = {**check.get("lg", {}), **spec.lg}
    check.setdefault("rate_gbps", spec.rate_gbps)
    base = CheckConfig.from_dict(check)

    if "scenario" in spec.params:
        scenario = FaultScenario.from_dict(spec.params["scenario"])
        base.seed = spec.seed
        outcome = run_scenario(scenario, base, obs=ctx.obs)
        metrics = {
            "ok": outcome.ok,
            "completed": outcome.completed,
            "violations": sum(outcome.counts.values()),
            "invariants_breached": len(outcome.counts),
            "n_copies": outcome.n_copies,
        }
        series = {"violations": [v.to_dict() for v in outcome.violations]}
        return _result(spec, metrics, series)

    fuzz = run_fuzz(
        seed=spec.seed,
        trials=spec.n_trials,
        base=base,
        shrink=bool(spec.params.get("shrink", True)),
    )
    metrics = {
        "ok": fuzz.ok,
        "trials": fuzz.trials,
        "failures": len(fuzz.failures),
        "runs": fuzz.runs,
    }
    series = {"failures": fuzz.failures}
    if fuzz.artifact is not None:
        series["artifact"] = [fuzz.artifact]
    return _result(spec, metrics, series)


@register("fig01")
def _run_fig01(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    from ..experiments.figures import figure1_attenuation_series

    series = figure1_attenuation_series(**spec.params)
    return _result(spec, {"n_points": len(series["attenuation_db"])},
                   {k: list(v) for k, v in series.items()})


@register("fig02")
def _run_fig02(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    from ..experiments.figures import figure2_flow_size_cdfs

    table = figure2_flow_size_cdfs(**spec.params)
    return _result(spec, {"n_sizes": len(table["size_bytes"])},
                   {k: list(v) for k, v in table.items()})


@register("tab01")
def _run_tab01(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    from ..experiments.figures import table1_loss_buckets

    rows = table1_loss_buckets(seed=spec.seed, **spec.params)
    return _result(spec, {"n_buckets": len(rows)}, {"rows": rows})


@register("fig20")
def _run_fig20(spec: ExperimentSpec, ctx: RunContext) -> CellResult:
    from ..experiments.figures import figure20_consecutive_losses

    results = figure20_consecutive_losses(seed=spec.seed, **spec.params)
    metrics = {}
    series = {}
    for rate, data in results.items():
        metrics[f"coverage@{rate:g}"] = data["five_register_coverage"]
        series[f"bursts@{rate:g}"] = data["bursts"].tolist()
        series[f"cdf@{rate:g}"] = [data["cdf"][k] for k in sorted(data["cdf"])]
    return _result(spec, metrics, series)
