"""Layer 3 of the runner: parallel sweep execution with checkpoint/resume.

A :class:`SweepRunner` fans the cells of a
:class:`~repro.runner.spec.SweepSpec` out over a
``concurrent.futures.ProcessPoolExecutor``.  Cells are fully independent
simulations with deterministic seeds baked into their specs, so the
parallel results are bit-identical to a serial run — the executor only
changes wall-clock time, never outcomes — and the result list is always
returned in canonical sweep (cell-enumeration) order regardless of
completion order.

Checkpointing: every finished cell is appended to a JSONL file as soon
as it completes (one :meth:`~repro.runner.harness.CellResult.to_json`
line, flushed).  A killed sweep restarted with the same checkpoint path
skips the cells already on disk; a torn final line from the kill is
ignored.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional

from .cells import run_cell
from .harness import CellResult
from .spec import SweepSpec

__all__ = ["SweepRunner", "load_checkpoint"]


def _run_cell_json(spec_dict: dict) -> str:
    """Worker-process entry point (module-level so it pickles)."""
    return run_cell(spec_dict).to_json()


def load_checkpoint(path: str) -> Dict[str, CellResult]:
    """Completed cells from a checkpoint file, keyed by cell id.

    Unparseable lines (a write torn by a mid-sweep kill) are skipped; a
    later entry for the same cell id wins.
    """
    done: Dict[str, CellResult] = {}
    if not path or not os.path.exists(path):
        return done
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                result = CellResult.from_json(line)
            except (json.JSONDecodeError, KeyError):
                continue
            done[result.cell_id] = result
    return done


class SweepRunner:
    """Executes a sweep's cells, serially or over a process pool."""

    def __init__(
        self,
        sweep: SweepSpec,
        workers: int = 1,
        checkpoint: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.sweep = sweep
        self.workers = workers
        self.checkpoint = checkpoint
        #: cells re-used from the checkpoint on the last run() (for tests
        #: and progress reporting)
        self.resumed = 0

    def run(
        self, progress: Optional[Callable[[CellResult], None]] = None
    ) -> List[CellResult]:
        """Run all pending cells; return results in sweep order.

        ``progress`` is called once per newly executed cell as it
        completes (not for cells resumed from the checkpoint).
        """
        cells = self.sweep.cells()
        done = load_checkpoint(self.checkpoint)
        done = {cid: r for cid, r in done.items()
                if cid in {c.cell_id() for c in cells}}
        self.resumed = len(done)
        pending = [c for c in cells if c.cell_id() not in done]

        # Fastpath cells are a single vectorized batch, not pool work:
        # one NumPy call evaluates all of them, so shipping them to
        # worker processes would only add pickling overhead.  Hybrid
        # cells stay in ``pending``: their packet-engine windows are
        # real per-cell work that benefits from the process pool.
        fastpath = [c for c in pending if c.backend == "fastpath"]
        pending = [c for c in pending if c.backend != "fastpath"]

        sink = None
        if self.checkpoint:
            sink = open(self.checkpoint, "a")
            # A kill can tear the final line mid-write; make sure appended
            # results start on a fresh line rather than gluing onto it.
            if sink.tell() > 0:
                with open(self.checkpoint, "rb") as tail:
                    tail.seek(-1, os.SEEK_END)
                    if tail.read(1) != b"\n":
                        sink.write("\n")
        try:
            if fastpath:
                from ..fastpath.backend import evaluate_specs

                for result in evaluate_specs(fastpath):
                    self._finish(result, done, sink, progress)
            if self.workers == 1 or len(pending) <= 1:
                for spec in pending:
                    self._finish(run_cell(spec), done, sink, progress)
            else:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    futures = {
                        pool.submit(_run_cell_json, spec.to_dict())
                        for spec in pending
                    }
                    while futures:
                        ready, futures = wait(futures, return_when=FIRST_COMPLETED)
                        for future in ready:
                            result = CellResult.from_json(future.result())
                            self._finish(result, done, sink, progress)
        finally:
            if sink is not None:
                sink.close()
        return [done[c.cell_id()] for c in cells]

    def _finish(self, result, done, sink, progress) -> None:
        done[result.cell_id] = result
        if sink is not None:
            sink.write(result.to_json() + "\n")
            sink.flush()
        if progress is not None:
            progress(result)
