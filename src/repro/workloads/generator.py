"""Open-loop flow arrival generation.

Produces (arrival_time_ns, size_bytes) pairs: Poisson arrivals whose
rate is derived from a target offered load on a given link speed, the
standard datacenter-workload methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from ..units import SEC
from .flowsizes import FlowSizeDistribution

__all__ = ["FlowArrival", "PoissonFlowGenerator"]


@dataclass(frozen=True)
class FlowArrival:
    time_ns: int
    size_bytes: int
    flow_id: int


class PoissonFlowGenerator:
    """Poisson flow arrivals at a target load of a link."""

    def __init__(
        self,
        distribution: FlowSizeDistribution,
        link_rate_bps: int,
        load: float,
        rng: np.random.Generator,
    ) -> None:
        if not 0.0 < load < 1.0:
            raise ValueError("load must be in (0,1)")
        self.distribution = distribution
        self.link_rate_bps = int(link_rate_bps)
        self.load = float(load)
        self.rng = rng
        mean_bytes = distribution.mean()
        flows_per_sec = load * link_rate_bps / 8.0 / mean_bytes
        self.mean_interarrival_ns = SEC / flows_per_sec

    def generate(self, n_flows: int, start_id: int = 0) -> List[FlowArrival]:
        gaps = self.rng.exponential(self.mean_interarrival_ns, n_flows)
        times = np.cumsum(gaps).astype(np.int64)
        sizes = self.distribution.sample(self.rng, n_flows)
        return [
            FlowArrival(int(t), int(s), start_id + i)
            for i, (t, s) in enumerate(zip(times, sizes))
        ]

    def __iter__(self) -> Iterator[FlowArrival]:  # pragma: no cover - convenience
        flow_id = 0
        time_ns = 0
        while True:
            time_ns += int(self.rng.exponential(self.mean_interarrival_ns))
            yield FlowArrival(time_ns, int(self.distribution.sample(self.rng, 1)[0]), flow_id)
            flow_id += 1
