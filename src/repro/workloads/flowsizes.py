"""Empirical flow/message-size distributions (paper Figure 2).

The paper motivates LinkGuardian with six published datacenter workload
distributions spanning 2008-2019.  The exact CDFs are only available as
plot data in the original papers, so each is encoded here as a
piecewise log-linear CDF capturing the published shape and the anchor
facts the paper relies on:

* most flows fit in a single packet (Google all-RPC: 143 B is the most
  frequent size; Meta key-value messages are tiny);
* 24,387 B is the most frequent size in the DCTCP web-search workload;
* 2 MB is the largest size in the Alibaba storage workload.

Samples are drawn by inverse-transform sampling of the CDF with
log-space interpolation between knots.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "FlowSizeDistribution",
    "GOOGLE_ALL_RPC", "GOOGLE_SEARCH_RPC", "META_KEY_VALUE", "META_HADOOP",
    "ALIBABA_STORAGE", "DCTCP_WEB_SEARCH", "WORKLOADS",
]


@dataclass(frozen=True)
class FlowSizeDistribution:
    """A piecewise CDF over flow sizes in bytes."""

    name: str
    #: (size_bytes, cumulative_fraction) knots; fractions end at 1.0
    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        fractions = [f for _, f in self.points]
        sizes = [s for s, _ in self.points]
        if fractions != sorted(fractions) or sizes != sorted(sizes):
            raise ValueError(f"{self.name}: CDF knots must be nondecreasing")
        if abs(fractions[-1] - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: CDF must end at 1.0")

    @property
    def min_size(self) -> int:
        return int(self.points[0][0])

    @property
    def max_size(self) -> int:
        return int(self.points[-1][0])

    def cdf(self, size: float) -> float:
        """Fraction of flows no larger than ``size``."""
        if size <= self.points[0][0]:
            return self.points[0][1] if size >= self.points[0][0] else 0.0
        if size >= self.points[-1][0]:
            return 1.0
        sizes = [s for s, _ in self.points]
        index = bisect_left(sizes, size)
        (s0, f0), (s1, f1) = self.points[index - 1], self.points[index]
        if s1 == s0:
            return f1
        ratio = (np.log(size) - np.log(s0)) / (np.log(s1) - np.log(s0))
        return f0 + ratio * (f1 - f0)

    def quantile(self, fraction: float) -> float:
        """Inverse CDF with log-space interpolation."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0,1]")
        fractions = [f for _, f in self.points]
        index = bisect_left(fractions, fraction)
        if index == 0:
            return self.points[0][0]
        if index >= len(self.points):
            return self.points[-1][0]
        (s0, f0), (s1, f1) = self.points[index - 1], self.points[index]
        if f1 == f0:
            return s1
        ratio = (fraction - f0) / (f1 - f0)
        value = float(np.exp(np.log(s0) + ratio * (np.log(s1) - np.log(s0))))
        # exp(log(...)) round-off can land a hair outside the support.
        return min(max(value, self.points[0][0]), self.points[-1][0])

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` flow sizes (bytes, integer, >= 1)."""
        draws = rng.random(n)
        sizes = np.array([self.quantile(u) for u in draws])
        return np.maximum(1, sizes.round()).astype(np.int64)

    def mean(self, n_grid: int = 2_000) -> float:
        """Numeric mean of the distribution (for load calculations)."""
        grid = np.linspace(0.0, 1.0, n_grid, endpoint=False) + 0.5 / n_grid
        return float(np.mean([self.quantile(u) for u in grid]))

    def single_packet_fraction(self, mss: int = 1460) -> float:
        """Fraction of flows that fit in one packet — the paper's key stat."""
        return self.cdf(mss)


# Most messages are sub-KB key-value operations (Atikoglu et al., 2012).
META_KEY_VALUE = FlowSizeDistribution(
    "Meta key-value",
    (
        (1, 0.0), (30, 0.30), (60, 0.55), (100, 0.70), (300, 0.85),
        (1_000, 0.95), (1_024, 0.955), (10_000, 0.99), (1_000_000, 1.0),
    ),
)

# Google search RPCs: small requests, sub-10 KB responses (Sivaram, 2008).
GOOGLE_SEARCH_RPC = FlowSizeDistribution(
    "Google search RPC",
    (
        (1, 0.0), (100, 0.12), (143, 0.25), (800, 0.55), (1_460, 0.70),
        (5_000, 0.85), (10_000, 0.92), (100_000, 0.99), (1_000_000, 1.0),
    ),
)

# All Google RPCs: 143 B is the most frequent size; the vast majority of
# RPCs fit in a single packet (Sivaram, 2008; paper §4.3).
GOOGLE_ALL_RPC = FlowSizeDistribution(
    "Google all RPC",
    (
        (1, 0.0), (100, 0.10), (143, 0.50), (300, 0.68), (1_460, 0.85),
        (10_000, 0.95), (100_000, 0.99), (10_000_000, 1.0),
    ),
)

# Hadoop shuffle traffic inside Facebook (Roy et al., 2015).
META_HADOOP = FlowSizeDistribution(
    "Meta Hadoop",
    (
        (100, 0.0), (300, 0.10), (1_000, 0.30), (1_460, 0.40), (10_000, 0.65),
        (100_000, 0.85), (1_000_000, 0.95), (10_000_000, 1.0),
    ),
)

# Alibaba cloud-storage traffic; 2 MB is the maximum flow size the paper
# uses from this workload (Li et al., HPCC, 2019).
ALIBABA_STORAGE = FlowSizeDistribution(
    "Alibaba storage",
    (
        (500, 0.0), (1_000, 0.15), (4_000, 0.35), (16_000, 0.55),
        (64_000, 0.75), (256_000, 0.88), (1_000_000, 0.96), (2_000_000, 1.0),
    ),
)

# The DCTCP web-search workload (Alizadeh et al., 2010); 24,387 B is the
# most frequent flow size (paper §4.3).
DCTCP_WEB_SEARCH = FlowSizeDistribution(
    "DCTCP web search",
    (
        (6_000, 0.0), (10_000, 0.15), (24_387, 0.50), (100_000, 0.70),
        (1_000_000, 0.85), (10_000_000, 0.97), (30_000_000, 1.0),
    ),
)

WORKLOADS: Dict[str, FlowSizeDistribution] = {
    dist.name: dist
    for dist in (
        META_KEY_VALUE, GOOGLE_SEARCH_RPC, GOOGLE_ALL_RPC,
        META_HADOOP, ALIBABA_STORAGE, DCTCP_WEB_SEARCH,
    )
}
