"""Datacenter workload models: flow-size distributions and arrivals."""

from .flowsizes import (
    ALIBABA_STORAGE, DCTCP_WEB_SEARCH, GOOGLE_ALL_RPC, GOOGLE_SEARCH_RPC,
    META_HADOOP, META_KEY_VALUE, WORKLOADS, FlowSizeDistribution,
)
from .generator import FlowArrival, PoissonFlowGenerator

__all__ = [
    "ALIBABA_STORAGE", "DCTCP_WEB_SEARCH", "GOOGLE_ALL_RPC",
    "GOOGLE_SEARCH_RPC", "META_HADOOP", "META_KEY_VALUE", "WORKLOADS",
    "FlowSizeDistribution", "FlowArrival", "PoissonFlowGenerator",
]
