"""BlameMonitor: voting verdicts driving corruptd's onset/clear signals.

The monitor is the drop-in replacement for the port-counter path: where
the service's :class:`~repro.service.arbiter.StreamingArbiter` folds
counter snapshots into per-link :class:`LossWindow` estimates, the
BlameMonitor folds **flow reports** into a sliding evidence window,
re-runs the 007 vote at a fixed cadence, and drives the very same
:meth:`FleetController.stream_onset` / :meth:`stream_clear` transitions
— so the policy, capacity checks, budget accounting, and decision audit
trail are byte-for-byte the machinery the oracle path uses.  The only
difference an operator sees is the ``evidence`` label on each decision
record: ``"voting"`` here, ``"port_counters"`` there.

Onset: a link enters the blamed set with an inverted loss estimate at
or above ``onset_threshold``.  Clear: an open link leaves the blamed
set, or its estimate falls below ``onset_threshold *
clear_hysteresis`` — mirroring the arbiter's hysteresis, with the
extra lag that flagged flows take up to ``window_s`` to age out of the
evidence window after the link actually heals.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..fleet.controller import ControllerConfig, FleetController
from ..fleet.policies import fleet_policy
from ..fleet.topology import CorruptionEpisode, FleetSpec, FleetTopology
from ..obs.trace import NULL_TRACER
from .evidence import FlowReport
from .voting import BlameReport, tally_votes

__all__ = [
    "BlameMonitor", "decision_signature", "run_oracle", "run_voting",
]


class BlameMonitor:
    """Drives a :class:`FleetController` from a live flow-report stream."""

    #: evidence source stamped on every decision record
    evidence = "voting"

    def __init__(self, topology: FleetTopology, config: ControllerConfig,
                 policy: str = "incremental", *,
                 window_s: float = 60.0,
                 eval_interval_s: Optional[float] = None,
                 flow_packets: int = 100,
                 min_votes: float = 2.0,
                 onset_threshold: float = 1e-6,
                 clear_hysteresis: float = 0.1,
                 decision_log: int = 1024,
                 mean_burst: float = 1.0,
                 obs=None) -> None:
        self.topology = topology
        self.controller = FleetController(
            topology, config, fleet_policy(policy), obs=obs)
        self.window_s = float(window_s)
        self.eval_interval_s = (float(eval_interval_s)
                                if eval_interval_s is not None
                                else self.window_s / 4.0)
        if self.window_s <= 0 or self.eval_interval_s <= 0:
            raise ValueError("window_s and eval_interval_s must be positive")
        self.flow_packets = int(flow_packets)
        self.min_votes = float(min_votes)
        self.onset_threshold = float(onset_threshold)
        self.clear_threshold = float(onset_threshold) * float(clear_hysteresis)
        self.mean_burst = float(mean_burst)
        self._reports: Deque[FlowReport] = deque()
        self._open: Dict[int, int] = {}     # link_id -> episode index
        self._estimates: Dict[int, float] = {}
        self._next_eval_s: Optional[float] = None
        self.last_verdict: Optional[BlameReport] = None
        self.decisions: Deque[dict] = deque(maxlen=int(decision_log))
        self._decision_cursor = 0
        self.records_seen = 0
        self.flagged_seen = 0
        self.rejected = 0
        self.onsets = 0
        self.clears = 0
        self.evaluations = 0
        self.last_record_s = 0.0
        self._tracer = obs.tracer if obs is not None else NULL_TRACER
        self._counters = None
        if obs is not None:
            registry = obs.registry
            self._counters = {
                name: registry.counter(f"blame.monitor.{name}")
                for name in ("reports", "flagged", "onsets", "clears",
                             "evaluations")
            }

    # -- state access ----------------------------------------------------------

    def corrupting_links(self) -> List[Tuple[int, float]]:
        return sorted(
            (link_id, self._estimates.get(link_id, 0.0))
            for link_id in self._open)

    def tracked_links(self) -> int:
        links = set()
        for report in self._reports:
            links.update(report.path)
        return len(links)

    def shard_sizes(self) -> Dict[int, int]:
        """Links under evidence in the current window, grouped by pod."""
        by_pod: Dict[int, set] = {}
        for report in self._reports:
            for link_id in report.path:
                pod = self.topology.link(link_id).pod
                by_pod.setdefault(pod, set()).add(link_id)
        return {pod: len(links) for pod, links in sorted(by_pod.items())}

    # -- the streaming transition function -------------------------------------

    def observe(self, report: FlowReport) -> List[dict]:
        """Fold one flow report in; return any new decisions."""
        if any(link >= self.topology.n_links or link < 0
               for link in report.path):
            self.rejected += 1
            return []
        self.records_seen += 1
        if report.retx:
            self.flagged_seen += 1
        if self._counters is not None:
            self._counters["reports"].inc()
            if report.retx:
                self._counters["flagged"].inc()
        self.last_record_s = report.time_s
        self._reports.append(report)
        horizon = report.time_s - self.window_s
        while self._reports and self._reports[0].time_s < horizon:
            self._reports.popleft()
        if self._next_eval_s is None:
            self._next_eval_s = report.time_s + self.eval_interval_s
        if report.time_s >= self._next_eval_s:
            self._reevaluate(report.time_s)
            self._next_eval_s = report.time_s + self.eval_interval_s
        return self._drain_decisions()

    def flush(self, time_s: Optional[float] = None) -> List[dict]:
        """Force an immediate re-vote (end of a feed, tests, drain)."""
        self._reevaluate(time_s if time_s is not None else self.last_record_s)
        return self._drain_decisions()

    def _reevaluate(self, now_s: float) -> None:
        self.evaluations += 1
        if self._counters is not None:
            self._counters["evaluations"].inc()
        verdict = tally_votes(
            self._reports, flow_packets=self.flow_packets,
            min_votes=self.min_votes)
        self.last_verdict = verdict
        blamed = set(verdict.blamed)
        self._estimates = {
            score.link_id: score.loss_estimate for score in verdict.ranked}
        for link_id in verdict.blamed:
            estimate = self._estimates.get(link_id, 0.0)
            if link_id in self._open or estimate < self.onset_threshold:
                continue
            episode = CorruptionEpisode(
                link_id=link_id, onset_s=now_s, clear_s=math.inf,
                loss_rate=estimate, mean_burst=self.mean_burst)
            self._open[link_id] = self.controller.stream_onset(episode)
            self.onsets += 1
            if self._counters is not None:
                self._counters["onsets"].inc()
            if self._tracer.enabled:
                self._tracer.instant(int(now_s * 1e9), "blame", "onset", {
                    "link": link_id, "loss_estimate": estimate,
                    "votes": (verdict.score_for(link_id).votes
                              if verdict.score_for(link_id) else 0.0),
                })
        for link_id in list(self._open):
            estimate = self._estimates.get(link_id, 0.0)
            if link_id in blamed and estimate >= self.clear_threshold:
                continue
            self.controller.stream_clear(self._open.pop(link_id), now_s)
            self.clears += 1
            if self._counters is not None:
                self._counters["clears"].inc()
            if self._tracer.enabled:
                self._tracer.instant(int(now_s * 1e9), "blame", "clear", {
                    "link": link_id, "loss_estimate": estimate,
                })

    def _drain_decisions(self) -> List[dict]:
        """New controller decisions since the last drain, as dicts."""
        fresh = []
        log = self.controller.outcome.decisions
        while self._decision_cursor < len(log):
            decision = log[self._decision_cursor]
            self._decision_cursor += 1
            record = {
                "time_s": decision.time_s,
                "link_id": decision.link_id,
                "action": decision.action,
                "loss_rate": decision.loss_rate,
                "evidence": self.evidence,
            }
            fresh.append(record)
            self.decisions.append(record)
        return fresh

    # -- summaries -------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        base = self.controller.outcome.counts()
        base.update({
            "records_seen": self.records_seen,
            "records_rejected": self.rejected,
            "reports_flagged": self.flagged_seen,
            "onsets": self.onsets,
            "clears": self.clears,
            "evaluations": self.evaluations,
            "tracked_links": self.tracked_links(),
            "open_episodes": len(self._open),
        })
        return base

    def state_dict(self) -> dict:
        """A JSON-able snapshot of the arbitration state (GET /state)."""
        return {
            "evidence": self.evidence,
            "counts": self.counts(),
            "shard_sizes": self.shard_sizes(),
            "corrupting": [
                {"link_id": link_id, "loss_estimate": loss}
                for link_id, loss in self.corrupting_links()
            ],
            "lg_active": self.controller.lg_active_links(),
            "exposed": self.controller.exposed_links(),
            "last_record_s": self.last_record_s,
            "last_verdict": (self.last_verdict.to_dict()
                             if self.last_verdict is not None else None),
        }


# ---------------------------------------------------------------------------
# Oracle comparison: does voting reach the counters' verdicts?
# ---------------------------------------------------------------------------

def decision_signature(decisions) -> List[Tuple[int, str]]:
    """The policy-visible core of a decision stream: (link, action).

    Times and loss rates are excluded on purpose — the voting path sees
    onsets later (evidence must accumulate) and estimates loss rather
    than measuring it, but *which link* got *which remedy* must match
    the oracle within hysteresis.
    """
    out = []
    for decision in decisions:
        if isinstance(decision, dict):
            link_id, action = decision["link_id"], decision["action"]
        else:
            link_id, action = decision.link_id, decision.action
        if action != "clear":
            out.append((link_id, action))
    return out


def run_oracle(fleet: FleetSpec, seed: int, config: ControllerConfig,
               policy: str, episodes) -> List[Tuple[int, str]]:
    """Batch-arbitrate ground-truth episodes on a fresh topology."""
    topology = FleetTopology(fleet, seed=seed)
    controller = FleetController(topology, config, fleet_policy(policy))
    outcome = controller.run(list(episodes))
    return decision_signature(outcome.decisions)


def run_voting(fleet: FleetSpec, seed: int, config: ControllerConfig,
               policy: str, reports, **monitor_kwargs) -> BlameMonitor:
    """Feed a report stream through a fresh BlameMonitor; returns it.

    A final :meth:`BlameMonitor.flush` runs so evidence at the tail of
    the stream still reaches a verdict.
    """
    topology = FleetTopology(fleet, seed=seed)
    monitor = BlameMonitor(topology, config, policy, **monitor_kwargs)
    for report in reports:
        monitor.observe(report)
    monitor.flush()
    return monitor
