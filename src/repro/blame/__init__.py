"""Fleet-scale corruption localization from flow-level evidence (007).

``repro.blame`` localizes the corrupting link *without oracle port
counters*, the way 007 (PAPERS.md) does it — democratically, from what
transport senders already know:

* :mod:`~repro.blame.evidence` — per-flow retransmission reports with a
  configurable telemetry-loss model (each report survives with
  probability ``coverage``), deterministic per flow index;
* :mod:`~repro.blame.paths` — 5-tuple-hashed ECMP path inference over
  the Clos fabric, so every consumer reconstructs the same path;
* :mod:`~repro.blame.voting` — flagged flows split one vote across
  their path links; explain-away ranking into a :class:`BlameReport`,
  scored against ground truth (precision / recall / top-1);
* :mod:`~repro.blame.adapter` — :class:`BlameMonitor` emits the same
  onset/clear signals as counter-based corruptd, so the
  FleetController, lifecycle replay, and the control-plane service run
  with ``evidence="voting"`` unchanged.

Quickstart::

    from repro.blame import BlameEvalSpec, evaluate_blame

    metrics = evaluate_blame(BlameEvalSpec(coverage=0.5, n_trials=20))
    print(metrics["top1_accuracy"], metrics["precision"])
"""

from .adapter import BlameMonitor, decision_signature, run_oracle, run_voting
from .evidence import (
    EvidenceSpec, FlowReport, LossOracle, default_fleet_evidence,
    flow_flag_probability, harvest_evidence, iter_reports, parse_flow_report,
)
from .paths import ecmp_path, flow_endpoints
from .voting import (
    BlameEvalSpec, BlameReport, LinkScore, evaluate_blame, invert_flow_loss,
    tally_votes,
)

__all__ = [
    "BlameMonitor", "decision_signature", "run_oracle", "run_voting",
    "EvidenceSpec", "FlowReport", "LossOracle", "default_fleet_evidence",
    "flow_flag_probability", "harvest_evidence", "iter_reports",
    "parse_flow_report",
    "ecmp_path", "flow_endpoints",
    "BlameEvalSpec", "BlameReport", "LinkScore", "evaluate_blame",
    "invert_flow_loss", "tally_votes",
]
