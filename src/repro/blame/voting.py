"""007-style voting: flagged flows split votes over their paths.

The scheme is 007's (PAPERS.md): every flow that retransmitted casts
one vote, split equally across the links of its inferred ECMP path.
Innocent links collect diluted votes from many different flagged flows;
the corrupting link collects a share of *every* flow that crossed it,
so its tally dominates.  Ranking uses explain-away iteration — blame
the top link, discard the flagged flows it explains, re-tally — which
suppresses the path-sharing neighbours of a genuinely bad link (they
were only ever co-voted, never independently flagged).

A :class:`BlameReport` is the windowed output: per-link scores,
crossing counts, an inverted per-packet loss estimate, and the blamed
set.  :func:`evaluate_blame` scores reports against ground truth —
synthetic single-bad-link trials, or a lifecycle trace's repaired
episodes — into precision / recall / top-1 accuracy, the metrics the
acceptance bar and CI assert on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.rng import RngFactory
from ..fleet.topology import CorruptionEpisode, FleetSpec, FleetTopology
from .evidence import EvidenceSpec, FlowReport, LossOracle, harvest_evidence

__all__ = [
    "LinkScore", "BlameReport", "tally_votes", "invert_flow_loss",
    "BlameEvalSpec", "evaluate_blame",
]


@dataclass(frozen=True)
class LinkScore:
    """One link's standing in a voting window."""

    link_id: int
    votes: float          # explain-away-attributed vote mass
    flagged: int          # flagged flows attributed to this link
    crossings: int        # all surviving flows that crossed it
    loss_estimate: float  # inverted per-packet loss rate
    confidence: float     # attributed share of the window's vote mass

    def to_dict(self) -> Dict[str, Any]:
        return {
            "link_id": self.link_id, "votes": self.votes,
            "flagged": self.flagged, "crossings": self.crossings,
            "loss_estimate": self.loss_estimate,
            "confidence": self.confidence,
        }


@dataclass
class BlameReport:
    """The voting verdict over one evidence window."""

    t_lo: float
    t_hi: float
    n_reports: int
    n_flagged: int
    #: explain-away ranking, strongest blame first
    ranked: List[LinkScore] = field(default_factory=list)
    #: links blamed with enough independent support (see ``min_votes``)
    blamed: List[int] = field(default_factory=list)

    def top(self, k: int = 1) -> List[int]:
        return [score.link_id for score in self.ranked[:k]]

    @property
    def top1(self) -> Optional[int]:
        return self.ranked[0].link_id if self.ranked else None

    def score_for(self, link_id: int) -> Optional[LinkScore]:
        for score in self.ranked:
            if score.link_id == link_id:
                return score
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t_lo": self.t_lo, "t_hi": self.t_hi,
            "n_reports": self.n_reports, "n_flagged": self.n_flagged,
            "blamed": self.blamed,
            "ranked": [score.to_dict() for score in self.ranked],
        }


def invert_flow_loss(flagged_fraction: float, flow_packets: int) -> float:
    """Per-packet loss from the flagged fraction of a link's crossings.

    Inverts ``p_flow = 1 - (1 - p_pkt)^packets``; clipped away from 1
    so a window where every crossing flagged still inverts finitely.
    """
    p_flow = min(max(flagged_fraction, 0.0), 1.0 - 1e-12)
    return 1.0 - (1.0 - p_flow) ** (1.0 / max(flow_packets, 1))


def tally_votes(
    reports: Sequence[FlowReport],
    *,
    flow_packets: int = 100,
    min_votes: float = 2.0,
    max_rounds: int = 32,
) -> BlameReport:
    """Tally one window of reports into a ranked :class:`BlameReport`.

    Explain-away rounds run while the strongest remaining link holds at
    least ``min_votes`` of un-attributed vote mass; the links blamed in
    those rounds form ``blamed``.  Remaining links are appended to the
    ranking by residual votes so the report is a total order.
    """
    crossings: Dict[int, int] = {}
    flagged_by_link: Dict[int, int] = {}
    votes: Dict[int, float] = {}
    flagged_flows: List[FlowReport] = []
    t_lo = math.inf
    t_hi = -math.inf
    for report in reports:
        t_lo = min(t_lo, report.time_s)
        t_hi = max(t_hi, report.time_s)
        for link in report.path:
            crossings[link] = crossings.get(link, 0) + 1
        if report.retx and report.path:
            flagged_flows.append(report)
            share = 1.0 / len(report.path)
            for link in report.path:
                votes[link] = votes.get(link, 0.0) + share
                flagged_by_link[link] = flagged_by_link.get(link, 0) + 1
    if not reports:
        t_lo = t_hi = 0.0

    total_votes = float(len(flagged_flows))
    out = BlameReport(
        t_lo=t_lo, t_hi=t_hi,
        n_reports=len(reports), n_flagged=len(flagged_flows),
    )

    def score_of(link: int, vote_mass: float, flows: int) -> LinkScore:
        n_cross = crossings.get(link, 0)
        fraction = flows / n_cross if n_cross else 0.0
        return LinkScore(
            link_id=link, votes=vote_mass, flagged=flows,
            crossings=n_cross,
            loss_estimate=invert_flow_loss(fraction, flow_packets),
            confidence=vote_mass / total_votes if total_votes else 0.0,
        )

    # Explain-away rounds over the flagged flows.  A link is blamed only
    # while it carries ``min_votes`` of vote mass AND its flagged count
    # clears the binomial noise bar: against the *residual* background
    # flag rate (recomputed each round, so one severe link does not
    # inflate the bar for milder ones), the expected chance flags on its
    # crossings plus four standard deviations.  Background
    # retransmissions (congestion, timeouts) therefore stop promoting
    # innocent links into the blamed set as windows grow.
    n_total = max(len(reports), 1)
    remaining = list(flagged_flows)
    live_votes = dict(votes)
    live_flagged = dict(flagged_by_link)
    for _ in range(max_rounds):
        if not remaining:
            break
        top_link = max(live_votes,
                       key=lambda link: (live_votes[link], -link))
        if live_votes[top_link] < min_votes:
            break
        noise_rate = len(remaining) / n_total
        noise_mean = noise_rate * crossings.get(top_link, 0)
        noise_bar = noise_mean + 4.0 * math.sqrt(noise_mean) + 2.0
        if live_flagged[top_link] < noise_bar:
            break
        out.ranked.append(score_of(
            top_link, live_votes[top_link], live_flagged[top_link]))
        out.blamed.append(top_link)
        survivors = []
        for report in remaining:
            if top_link in report.path:
                share = 1.0 / len(report.path)
                for link in report.path:
                    live_votes[link] -= share
                    live_flagged[link] -= 1
                    if live_flagged[link] <= 0:
                        live_votes.pop(link, None)
                        live_flagged.pop(link, None)
            else:
                survivors.append(report)
        remaining = survivors

    # Residuals: everything not blamed, by leftover vote mass.
    blamed_set = set(out.blamed)
    residual = sorted(
        ((mass, link) for link, mass in live_votes.items()
         if link not in blamed_set),
        key=lambda item: (-item[0], item[1]))
    for mass, link in residual:
        out.ranked.append(score_of(link, mass, live_flagged.get(link, 0)))
    return out


# ---------------------------------------------------------------------------
# Accuracy evaluation against ground truth
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BlameEvalSpec:
    """One blame-accuracy experiment: evidence shape x ground truth.

    ``mode="trials"`` runs synthetic single-bad-link windows: trial k
    plants one corrupting link (drawn from the addressed stream
    ``blame.eval.trial`` at ``index=k``) at a log-uniform loss rate and
    asks voting to find it — the top-1 acceptance bar.  ``mode="trace"``
    replays lifecycle ground truth: windows over a generated failure
    trace with the repair loop applied, truth being every link
    corrupting above ``detectable_loss`` during the window.
    """

    fleet: FleetSpec = field(default_factory=lambda: FleetSpec(
        n_pods=2, tors_per_pod=4, fabrics_per_pod=2, spine_uplinks=4))
    mode: str = "trials"
    n_trials: int = 20
    window_s: float = 60.0
    coverage: float = 1.0
    flows_per_s: float = 400.0
    flow_packets: int = 100
    base_retx_prob: float = 0.002
    min_votes: float = 2.0
    #: trials mode: planted loss rates, log-uniform in [lo, hi]
    loss_lo: float = 5e-4
    loss_hi: float = 5e-3
    #: trace mode: days of lifecycle time to window over
    trace_days: float = 10.0
    #: trace mode: truth is links corrupting at or above this rate
    detectable_loss: float = 1e-4
    repair: str = "corropt"
    seed: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("trials", "trace"):
            raise ValueError(f"unknown eval mode {self.mode!r}")
        if self.n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0 < self.loss_lo <= self.loss_hi <= 1:
            raise ValueError("need 0 < loss_lo <= loss_hi <= 1")

    def evidence(self, seed: int) -> EvidenceSpec:
        return EvidenceSpec(
            flows_per_s=self.flows_per_s, flow_packets=self.flow_packets,
            coverage=self.coverage, base_retx_prob=self.base_retx_prob,
            seed=seed)

    def to_dict(self) -> Dict[str, Any]:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["fleet"] = self.fleet.to_dict()
        return out


def _score_window(report: BlameReport, truth: List[int],
                  totals: Dict[str, float]) -> None:
    truth_set = set(truth)
    blamed = set(report.blamed)
    correct = len(blamed & truth_set)
    totals["windows"] += 1
    totals["blamed"] += len(blamed)
    totals["correct"] += correct
    totals["truth"] += len(truth_set)
    totals["recalled"] += len(truth_set & blamed)
    if len(truth_set) == 1:
        totals["single_windows"] += 1
        if report.top1 in truth_set:
            totals["single_top1"] += 1
    if report.top1 in truth_set:
        totals["top1"] += 1


def _finalize(totals: Dict[str, float], spec: BlameEvalSpec,
              skipped: int) -> Dict[str, Any]:
    windows = totals["windows"]
    single = totals["single_windows"]
    return {
        "mode": spec.mode,
        "coverage": spec.coverage,
        "windows": int(windows),
        "windows_skipped": skipped,
        "single_bad_link_windows": int(single),
        "top1_accuracy": totals["top1"] / windows if windows else 0.0,
        "single_top1_accuracy": (
            totals["single_top1"] / single if single else 0.0),
        "precision": (
            totals["correct"] / totals["blamed"] if totals["blamed"]
            else 0.0),
        "recall": (
            totals["recalled"] / totals["truth"] if totals["truth"]
            else 0.0),
        "mean_blamed": totals["blamed"] / windows if windows else 0.0,
    }


def evaluate_blame(spec: BlameEvalSpec, obs=None) -> Dict[str, Any]:
    """Run one accuracy evaluation; returns the metrics summary.

    Deterministic for a given spec: trials address their bad-link and
    loss draws by trial index, evidence addresses its flows by global
    flow index, and trace mode regenerates the same lifecycle trace the
    replay pipeline would.
    """
    topology = FleetTopology(spec.fleet, seed=spec.seed)
    factory = RngFactory(spec.seed)
    totals = {key: 0.0 for key in (
        "windows", "blamed", "correct", "truth", "recalled", "top1",
        "single_windows", "single_top1")}
    skipped = 0
    counter = None
    if obs is not None:
        counter = obs.registry.counter("blame.eval.windows")

    if spec.mode == "trials":
        for trial in range(spec.n_trials):
            rng = factory.stream("blame.eval.trial", index=trial)
            bad_link = int(rng.integers(topology.n_links))
            log_lo, log_hi = math.log(spec.loss_lo), math.log(spec.loss_hi)
            loss = math.exp(float(rng.uniform(log_lo, log_hi)))
            episode = CorruptionEpisode(
                link_id=bad_link, onset_s=0.0, clear_s=spec.window_s,
                loss_rate=loss, mean_burst=1.0)
            evidence = spec.evidence(
                seed=factory.child_seed("blame.eval.evidence", index=trial))
            reports = harvest_evidence(
                evidence, topology, [episode], 0.0, spec.window_s)
            verdict = tally_votes(
                reports, flow_packets=spec.flow_packets,
                min_votes=spec.min_votes)
            _score_window(verdict, [bad_link], totals)
            if counter is not None:
                counter.inc()
        return _finalize(totals, spec, skipped)

    # mode == "trace": lifecycle ground truth.
    from ..lifecycle.repair import apply_repair, repair_policy
    from ..lifecycle.traces import TraceSpec, generate_trace

    trace = generate_trace(TraceSpec(
        fleet=spec.fleet, duration_days=spec.trace_days, seed=spec.seed))
    repaired, _ = apply_repair(trace, repair_policy(spec.repair))
    episodes = [item.episode for item in repaired]
    oracle = LossOracle(episodes)
    evidence = spec.evidence(seed=factory.child_seed("blame.trace.evidence"))
    duration_s = spec.trace_days * 24 * 3600.0
    n_windows = int(duration_s // spec.window_s)
    evaluated = 0
    for index in range(n_windows):
        if evaluated >= spec.n_trials:
            break
        t_lo = index * spec.window_s
        mid = t_lo + spec.window_s / 2
        truth = oracle.corrupting_at(mid, min_loss=spec.detectable_loss)
        if not truth:
            skipped += 1
            continue
        reports = harvest_evidence(
            evidence, topology, episodes, t_lo, t_lo + spec.window_s)
        verdict = tally_votes(
            reports, flow_packets=spec.flow_packets,
            min_votes=spec.min_votes)
        _score_window(verdict, truth, totals)
        evaluated += 1
        if counter is not None:
            counter.inc()
    return _finalize(totals, spec, skipped)
