"""ECMP path inference over the Clos fabric (007 §4: path discovery).

007's voting scheme needs, per flow, the set of links the flow's
packets crossed.  Production fabrics hash each flow's 5-tuple onto one
of the equal-cost valley-free paths; here the same idea is reproduced
deterministically — a keyed hash of the flow's endpoints and label
picks the fabric plane and spine ports, so any consumer (the evidence
harvester, the voting tally, a test) reconstructs the identical path
from the identical flow identity without shared state.

Path shapes over a :class:`~repro.fabric.topology.FabricTopology`:

* **intra-ToR** — both endpoints under one ToR: no fabric links.
* **intra-pod** — ToR up to a fabric switch, back down to the peer ToR:
  2 links, one ECMP choice (the fabric plane).
* **inter-pod** — up to a fabric switch, up its spine plane, down into
  the destination pod's same-plane fabric switch, down to the ToR:
  4 links, three ECMP choices (plane, up-port, down-port).  Planes are
  preserved across the spine (a spine plane only interconnects the
  fabric switches of its own index), as in the paper's Figure 4 fabric.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from ..fabric.topology import FabricTopology

__all__ = ["ecmp_path", "flow_endpoints"]


def _hash_choice(seed: int, parts: Tuple[int, ...], salt: str, n: int) -> int:
    """A deterministic ECMP choice in ``[0, n)`` keyed by flow identity.

    sha256 rather than ``hash()`` so the choice is stable across
    processes and Python builds (the same property the RNG factory's
    addressed streams rely on).
    """
    key = f"{seed}:ecmp:{salt}:" + ":".join(str(p) for p in parts)
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "little") % n


def ecmp_path(
    topology: FabricTopology,
    src_pod: int,
    src_tor: int,
    dst_pod: int,
    dst_tor: int,
    flow_label: int,
    seed: int = 0,
) -> Tuple[int, ...]:
    """Link ids a flow crosses, in src-to-dst order.

    ``flow_label`` stands in for the transport 5-tuple's ports: two
    flows between the same ToRs with different labels may hash onto
    different planes, exactly the ECMP spreading the voting scheme
    counts on for coverage of every link.
    """
    identity = (src_pod, src_tor, dst_pod, dst_tor, flow_label)
    if src_pod == dst_pod:
        if src_tor == dst_tor:
            return ()
        fabric = _hash_choice(seed, identity, "plane",
                              topology.fabrics_per_pod)
        return (
            topology.tor_fabric_link(src_pod, src_tor, fabric).link_id,
            topology.tor_fabric_link(dst_pod, dst_tor, fabric).link_id,
        )
    fabric = _hash_choice(seed, identity, "plane", topology.fabrics_per_pod)
    up_port = _hash_choice(seed, identity, "up", topology.spine_uplinks)
    down_port = _hash_choice(seed, identity, "down", topology.spine_uplinks)
    return (
        topology.tor_fabric_link(src_pod, src_tor, fabric).link_id,
        topology.fabric_spine_link(src_pod, fabric, up_port).link_id,
        topology.fabric_spine_link(dst_pod, fabric, down_port).link_id,
        topology.tor_fabric_link(dst_pod, dst_tor, fabric).link_id,
    )


def flow_endpoints(rng, n_pods: int, tors_per_pod: int
                   ) -> Tuple[int, int, int, int]:
    """Draw (src_pod, src_tor, dst_pod, dst_tor) with distinct ToRs.

    Rejection-samples the destination until it differs from the source
    ToR — an intra-ToR flow crosses no fabric link and carries no
    evidence.  Uses exactly one ``rng.integers`` call per attempt so
    the draw count is bounded and the stream stays addressable.
    """
    total = n_pods * tors_per_pod
    src = int(rng.integers(total))
    dst = int(rng.integers(total))
    while dst == src:
        dst = int(rng.integers(total))
    return (src // tors_per_pod, src % tors_per_pod,
            dst // tors_per_pod, dst % tors_per_pod)
