"""Flow-level evidence: per-flow retransmission reports (007 §3).

The blame subsystem's input is not port counters but what transport
senders already know: "this flow retransmitted".  Each
:class:`FlowReport` carries one flow's endpoints, its inferred ECMP
path, and a ``retx`` flag; the harvester below generates the fleet's
report stream deterministically from ground-truth corruption state, so
voting accuracy can be scored against the truth that produced the
evidence.

Determinism is addressed per flow: flow ``k`` of a harvest draws
everything — endpoints, label, retransmission coin, telemetry-loss
coin — from a stream keyed ``(seed, "blame.flow", k)`` under the same
naming scheme as :meth:`~repro.core.rng.RngFactory.child_seed` (see
:class:`_FlowStream`), and its timestamp is
``(k + 0.5) / flows_per_s``.  Harvesting ``[0, 60)`` therefore yields
byte-identical reports to harvesting ``[0, 30)`` then ``[30, 60)`` —
windows, shards, and replay order never perturb the evidence.

The telemetry-loss model is the part real fleets get wrong: every
report is independently *dropped* with probability ``1 - coverage``
(collection agents crash, samples are rate-limited, spans are lost in
transit).  007's claim — and the acceptance bar here — is that voting
still localizes the corrupting link from the surviving fraction.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple

from ..fabric.topology import FabricTopology
from ..fleet.topology import CorruptionEpisode, FleetSpec
from .paths import ecmp_path, flow_endpoints


class _FlowStream:
    """Counter-expanded uniform draws addressed like an RNG stream.

    Keyed by the same ``f"{seed}:{name}#{index}"`` scheme
    :meth:`~repro.core.rng.RngFactory.child_seed` uses, but expanded
    directly from sha256 blocks (four 64-bit draws per digest) instead
    of constructing a ``numpy`` generator — a flow needs ~5 draws, and
    generator construction alone costs ~30x more than the draws.  Same
    addressing guarantee: draws at index ``k`` depend only on
    ``(seed, name, k)``, never on other flows or window boundaries.
    """

    __slots__ = ("_key", "_block", "_words", "_cursor")

    def __init__(self, seed: int, name: str, index: int) -> None:
        self._key = f"{seed}:{name}#{index}".encode()
        self._block = 0
        self._words: Tuple[int, ...] = ()
        self._cursor = 0

    def _next_word(self) -> int:
        if self._cursor >= len(self._words):
            digest = hashlib.sha256(
                self._key + b":" + str(self._block).encode()).digest()
            self._block += 1
            self._words = tuple(
                int.from_bytes(digest[i:i + 8], "little")
                for i in range(0, 32, 8))
            self._cursor = 0
        word = self._words[self._cursor]
        self._cursor += 1
        return word

    def integers(self, n: int) -> int:
        return self._next_word() % int(n)

    def random(self) -> float:
        return self._next_word() / 2.0 ** 64

__all__ = [
    "EvidenceSpec", "FlowReport", "LossOracle", "default_fleet_evidence",
    "flow_flag_probability", "harvest_evidence", "iter_reports",
    "parse_flow_report",
]


@dataclass(frozen=True)
class EvidenceSpec:
    """Shape of one fleet's flow-evidence stream."""

    #: aggregate flow arrival rate across the fleet
    flows_per_s: float = 400.0
    #: packets per flow; sets how likely a lossy link flags a crossing
    flow_packets: int = 100
    #: fraction of reports that survive telemetry loss
    coverage: float = 1.0
    #: background retransmission probability of a clean flow (timeouts,
    #: congestion) — the noise floor voting must rise above
    base_retx_prob: float = 0.002
    seed: int = 1

    def __post_init__(self) -> None:
        if self.flows_per_s <= 0:
            raise ValueError("flows_per_s must be positive")
        if self.flow_packets < 1:
            raise ValueError("flow_packets must be >= 1")
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        if not 0.0 <= self.base_retx_prob < 1.0:
            raise ValueError("base_retx_prob must be in [0, 1)")

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EvidenceSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown EvidenceSpec fields: {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class FlowReport:
    """One flow's evidence: where it went and whether it retransmitted."""

    time_s: float
    flow_id: int
    src_pod: int
    src_tor: int
    dst_pod: int
    dst_tor: int
    path: Tuple[int, ...]
    retx: bool

    def to_dict(self) -> dict:
        return {
            "t": self.time_s, "flow": self.flow_id,
            "src": [self.src_pod, self.src_tor],
            "dst": [self.dst_pod, self.dst_tor],
            "path": list(self.path), "retx": self.retx,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))


def parse_flow_report(data: Dict[str, Any]) -> FlowReport:
    """Build a :class:`FlowReport` from its ``to_dict`` form; raises
    ``ValueError`` on a mis-shaped document."""
    try:
        src = data["src"]
        dst = data["dst"]
        return FlowReport(
            time_s=float(data["t"]),
            flow_id=int(data["flow"]),
            src_pod=int(src[0]), src_tor=int(src[1]),
            dst_pod=int(dst[0]), dst_tor=int(dst[1]),
            path=tuple(int(link) for link in data["path"]),
            retx=bool(data["retx"]),
        )
    except (KeyError, IndexError, TypeError) as exc:
        raise ValueError(f"mis-shaped flow report: {exc}") from None


class LossOracle:
    """Ground-truth per-link loss as a function of time.

    Built from corruption episodes (a campaign's, or a lifecycle
    trace's repaired episodes); answers ``loss_at(link_id, t)`` — the
    loss rate the flow's packets actually saw crossing the link.
    """

    def __init__(self, episodes: Sequence[CorruptionEpisode]) -> None:
        self._intervals: Dict[int, List[Tuple[float, float, float]]] = {}
        for episode in episodes:
            self._intervals.setdefault(episode.link_id, []).append(
                (episode.onset_s, episode.clear_s, episode.loss_rate))
        for spans in self._intervals.values():
            spans.sort()

    def loss_at(self, link_id: int, time_s: float) -> float:
        for onset_s, clear_s, loss_rate in self._intervals.get(link_id, ()):
            if onset_s <= time_s < clear_s:
                return loss_rate
            if onset_s > time_s:
                break
        return 0.0

    def corrupting_at(self, time_s: float,
                      min_loss: float = 0.0) -> List[int]:
        """Links corrupting at ``time_s`` with loss >= ``min_loss``."""
        return sorted(
            link_id for link_id, spans in self._intervals.items()
            if any(onset <= time_s < clear and loss >= min_loss
                   for onset, clear, loss in spans))


def flow_flag_probability(path_losses: Sequence[float], flow_packets: int,
                          base_retx_prob: float = 0.0) -> float:
    """P(flow retransmits) crossing links with the given loss rates.

    Per link, a ``flow_packets``-packet flow escapes unscathed with
    probability ``(1-loss)^packets``; the flow flags if any link hits
    it or the background (congestion/timeout) coin does.
    """
    p_clean = 1.0 - base_retx_prob
    for loss in path_losses:
        if loss > 0.0:
            p_clean *= (1.0 - loss) ** flow_packets
    return 1.0 - p_clean


def iter_reports(
    spec: EvidenceSpec,
    topology: FabricTopology,
    loss_at: Callable[[int, float], float],
    t_lo: float,
    t_hi: float,
) -> Iterator[FlowReport]:
    """Surviving flow reports with timestamps in ``[t_lo, t_hi)``.

    ``loss_at(link_id, time_s)`` supplies ground truth (a
    :class:`LossOracle`, or any callable).  Reports stream oldest
    first; dropped (telemetry-lost) flows are silently absent, exactly
    as a collector would see them.
    """
    if t_hi <= t_lo:
        return
    rate = spec.flows_per_s
    first = math.floor(t_lo * rate)
    last = math.ceil(t_hi * rate)
    for k in range(max(first, 0), last):
        time_s = (k + 0.5) / rate
        if not t_lo <= time_s < t_hi:
            continue
        rng = _FlowStream(spec.seed, "blame.flow", k)
        src_pod, src_tor, dst_pod, dst_tor = flow_endpoints(
            rng, topology.n_pods, topology.tors_per_pod)
        label = int(rng.integers(1 << 16))
        path = ecmp_path(topology, src_pod, src_tor, dst_pod, dst_tor,
                         label, seed=spec.seed)
        p_flag = flow_flag_probability(
            [loss_at(link, time_s) for link in path],
            spec.flow_packets, spec.base_retx_prob)
        retx = bool(rng.random() < p_flag)
        surviving = bool(rng.random() < spec.coverage)
        if not surviving:
            continue
        yield FlowReport(
            time_s=time_s, flow_id=k,
            src_pod=src_pod, src_tor=src_tor,
            dst_pod=dst_pod, dst_tor=dst_tor,
            path=path, retx=retx,
        )


def harvest_evidence(
    spec: EvidenceSpec,
    topology: FabricTopology,
    episodes: Sequence[CorruptionEpisode],
    t_lo: float,
    t_hi: float,
) -> List[FlowReport]:
    """All surviving reports of ``[t_lo, t_hi)`` against episode truth."""
    oracle = LossOracle(episodes)
    return list(iter_reports(spec, topology, oracle.loss_at, t_lo, t_hi))


def default_fleet_evidence(fleet: FleetSpec, seed: int = 1,
                           **overrides: Any) -> EvidenceSpec:
    """An evidence spec sized so voting has signal on ``fleet``.

    The aggregate flow rate scales with the ToR count — per-link
    crossing counts, not fleet size, are what set voting confidence —
    while everything else keeps the defaults unless overridden.
    """
    tors = fleet.n_pods * fleet.tors_per_pod
    params: Dict[str, Any] = {"flows_per_s": 50.0 * tors, "seed": seed}
    params.update(overrides)
    return EvidenceSpec(**params)
