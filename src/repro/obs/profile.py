"""Wall-clock phase timers for experiment cells.

A :class:`PhaseTimer` accumulates real (not simulated) seconds per named
phase — setup / run / collect, or anything a runner wants to break out —
so a :class:`~repro.runner.harness.CellResult` can report where the
wall-clock went.  Timings are diagnostics, never part of the canonical
result form.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict

__all__ = ["PhaseTimer"]


class PhaseTimer:
    """Accumulating named wall-clock phase timers."""

    __slots__ = ("_seconds",)

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        """Time a ``with`` block under ``name`` (accumulates on re-entry)."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - started)

    def add(self, name: str, seconds: float) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + float(seconds)

    def timings(self, digits: int = 6) -> Dict[str, float]:
        """Phase → seconds, rounded for stable JSON output."""
        return {name: round(value, digits)
                for name, value in self._seconds.items()}
