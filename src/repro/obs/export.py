"""Exporters: JSONL, Chrome trace-event JSON (Perfetto) and Prometheus text.

The Chrome trace-event format is the JSON schema Perfetto and
``chrome://tracing`` open directly: a ``traceEvents`` array where every
record carries ``name``/``cat``/``ph``/``ts``/``pid``/``tid``.  Timestamps
are **microseconds**; the simulator's integer nanoseconds are divided by
1000.0 so sub-µs spacing survives as fractional ts.  Events are sorted by
timestamp before export so traces stitched from several runs still load.

Spans (:mod:`repro.obs.spans`) export two ways on top of the flat
events: duration spans as complete ("X") records and instant children as
"i" records, each carrying ``span_id``/``parent_id``/``trace_id`` in
``args``; and one flow-event chain ("s"/"t"/"f", ``id`` = trace id) per
recovery episode so Perfetto draws the causal arrows from the corruption
drop through to the in-order release.
"""

from __future__ import annotations

import json
import math
from typing import List, Optional

from .metrics import MetricsRegistry
from .spans import Span, SpanTracer
from .timeline import TimelineRecorder
from .trace import TraceEvent, Tracer

__all__ = [
    "to_chrome_trace", "write_chrome_trace",
    "events_to_jsonl", "write_jsonl",
    "write_metrics_json", "write_metrics_prometheus",
    "write_timeline_json",
    "prometheus_escape_label", "prometheus_line", "prometheus_text",
]

#: Stable thread-track ids per category so Perfetto groups related events.
_CATEGORY_TIDS = {
    "engine": 1,
    "link": 2,
    "lg": 3,
    "lg.sender": 4,
    "lg.receiver": 5,
    "corruptd": 6,
    "fleet": 7,
    "episode": 8,
}
_DEFAULT_TID = 9


def _sorted_events(tracer: Tracer) -> List[TraceEvent]:
    return sorted(tracer.events(), key=lambda e: e.ts)


def _span_args(span: Span) -> dict:
    return {"span_id": span.span_id, "parent_id": span.parent_id,
            "trace_id": span.trace_id, **(span.args or {})}


def _span_records(spans: SpanTracer) -> List[dict]:
    """Chrome-trace records for every retained span plus per-episode
    flow chains."""
    records: List[dict] = []
    trees = spans.trees()
    for span in spans.spans():
        record = {
            "name": span.name,
            "cat": span.category,
            "ts": span.start_ns / 1000.0,
            "pid": 1,
            "tid": _CATEGORY_TIDS.get(span.category, _DEFAULT_TID),
            "args": _span_args(span),
        }
        if span.end_ns is None:
            record["ph"] = "B"  # still open: unfinished slice
        elif span.end_ns == span.start_ns:
            record["ph"] = "i"
            record["s"] = "t"
        else:
            record["ph"] = "X"
            record["dur"] = (span.end_ns - span.start_ns) / 1000.0
        records.append(record)
    for trace_id, group in trees.items():
        if len(group) < 2:
            continue
        root = group[0]
        flow = {"name": root.name, "cat": "flow", "pid": 1, "id": trace_id}
        records.append({**flow, "ph": "s", "ts": root.start_ns / 1000.0,
                        "tid": _CATEGORY_TIDS.get(root.category, _DEFAULT_TID)})
        for child in group[1:]:
            records.append({
                **flow, "ph": "t", "ts": child.start_ns / 1000.0,
                "tid": _CATEGORY_TIDS.get(child.category, _DEFAULT_TID)})
        if root.end_ns is not None:
            # The finish must not precede any step (a pause child can
            # straddle the release), so clamp it to the last step.
            finish_ns = max([root.end_ns] + [c.start_ns for c in group[1:]])
            records.append({
                **flow, "ph": "f", "bp": "e", "ts": finish_ns / 1000.0,
                "tid": _CATEGORY_TIDS.get(root.category, _DEFAULT_TID)})
    return records


def to_chrome_trace(tracer: Tracer,
                    registry: Optional[MetricsRegistry] = None,
                    spans: Optional[SpanTracer] = None) -> dict:
    """Render retained events (and spans, if given) as a Chrome
    trace-event JSON object."""
    trace_events = []
    for event in _sorted_events(tracer):
        record = {
            "name": event.name,
            "cat": event.category,
            "ph": event.phase,
            "ts": event.ts / 1000.0,
            "pid": 1,
            "tid": _CATEGORY_TIDS.get(event.category, _DEFAULT_TID),
        }
        if event.args:
            record["args"] = event.args
        elif event.phase == "C":
            record["args"] = {"value": 0}
        trace_events.append(record)
    if spans is not None:
        trace_events.extend(_span_records(spans))
        trace_events.sort(key=lambda r: r["ts"])
    out = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {
            "emitted": tracer.emitted,
            "dropped": tracer.dropped,
        },
    }
    if spans is not None:
        out["otherData"]["spans"] = {
            "started": spans.started,
            "dropped": spans.dropped,
        }
    if registry is not None:
        out["otherData"]["metrics"] = registry.snapshot()
    return out


def write_chrome_trace(path: str, tracer: Tracer,
                       registry: Optional[MetricsRegistry] = None,
                       spans: Optional[SpanTracer] = None) -> str:
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(tracer, registry, spans=spans), handle)
    return path


def events_to_jsonl(tracer: Tracer,
                    spans: Optional[SpanTracer] = None) -> str:
    """One compact JSON object per line, oldest event first.

    Span records (marked ``"kind": "span"``, native-ns fields) follow
    the event records, so existing line-by-line event readers keep
    working unchanged.
    """
    lines = []
    for event in _sorted_events(tracer):
        record = {
            "ts": event.ts,
            "cat": event.category,
            "name": event.name,
            "ph": event.phase,
        }
        if event.args:
            record["args"] = event.args
        lines.append(json.dumps(record, separators=(",", ":")))
    if spans is not None:
        for span in spans.spans():
            record = {"kind": "span", **span.to_dict()}
            lines.append(json.dumps(record, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: str, tracer: Tracer,
                spans: Optional[SpanTracer] = None) -> str:
    with open(path, "w") as handle:
        handle.write(events_to_jsonl(tracer, spans=spans))
    return path


def _json_safe(value):
    """Replace non-finite floats with None so the file is strict JSON.

    Snapshot providers with zero samples can roll up to NaN/Inf (0/0
    rates etc.); ``json.dump`` would happily write ``NaN``, which most
    parsers then reject.
    """
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def write_metrics_json(path: str, registry: MetricsRegistry) -> str:
    with open(path, "w") as handle:
        json.dump(_json_safe(registry.snapshot()), handle, indent=2,
                  sort_keys=True, allow_nan=False)
    return path


def prometheus_escape_label(value) -> str:
    """Escape a label value per the Prometheus text exposition format.

    The spec's label-value escaping: backslash -> ``\\\\``, double-quote
    -> ``\\"``, line feed -> ``\\n``.  Without this, a label value
    containing any of the three (link names, file paths, operator-typed
    strings) splits or corrupts the sample line and the whole scrape
    fails to parse.
    """
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def prometheus_line(family: str, labels: Optional[dict], value) -> str:
    """One exposition sample line, label values escaped.

    ``family`` must already be a valid metric name (callers sanitize);
    labels render in the given dict order.  Non-finite values are the
    caller's problem — Prometheus accepts ``NaN``/``+Inf`` spelled that
    way, but the registry convention is to skip them.
    """
    if labels:
        rendered = ",".join(
            f'{key}="{prometheus_escape_label(val)}"'
            for key, val in labels.items()
        )
        return f"{family}{{{rendered}}} {value}"
    return f"{family} {value}"


def prometheus_text(registry: MetricsRegistry,
                    extra_lines: Optional[List[str]] = None) -> str:
    """Full exposition document: the registry dump plus labeled extras.

    ``extra_lines`` lets a caller (the control-plane service) append
    label-carrying series built with :func:`prometheus_line` after the
    registry's flat families; the result stays one scrape-valid body.
    """
    body = registry.prometheus_text()
    if extra_lines:
        body += "\n".join(extra_lines) + "\n"
    return body


def write_metrics_prometheus(path: str, registry: MetricsRegistry) -> str:
    with open(path, "w") as handle:
        handle.write(registry.prometheus_text())
    return path


def write_timeline_json(path: str, recorder: TimelineRecorder) -> str:
    """Persist a flight-recorder series as strict JSON."""
    with open(path, "w") as handle:
        json.dump(_json_safe(recorder.series()), handle, sort_keys=True,
                  allow_nan=False)
    return path
