"""Exporters: JSONL, Chrome trace-event JSON (Perfetto) and Prometheus text.

The Chrome trace-event format is the JSON schema Perfetto and
``chrome://tracing`` open directly: a ``traceEvents`` array where every
record carries ``name``/``cat``/``ph``/``ts``/``pid``/``tid``.  Timestamps
are **microseconds**; the simulator's integer nanoseconds are divided by
1000.0 so sub-µs spacing survives as fractional ts.  Events are sorted by
timestamp before export so traces stitched from several runs still load.
"""

from __future__ import annotations

import json
import math
from typing import List, Optional

from .metrics import MetricsRegistry
from .trace import TraceEvent, Tracer

__all__ = [
    "to_chrome_trace", "write_chrome_trace",
    "events_to_jsonl", "write_jsonl",
    "write_metrics_json", "write_metrics_prometheus",
]

#: Stable thread-track ids per category so Perfetto groups related events.
_CATEGORY_TIDS = {
    "engine": 1,
    "link": 2,
    "lg": 3,
    "lg.sender": 4,
    "lg.receiver": 5,
    "corruptd": 6,
    "fleet": 7,
}
_DEFAULT_TID = 9


def _sorted_events(tracer: Tracer) -> List[TraceEvent]:
    return sorted(tracer.events(), key=lambda e: e.ts)


def to_chrome_trace(tracer: Tracer,
                    registry: Optional[MetricsRegistry] = None) -> dict:
    """Render retained events as a Chrome trace-event JSON object."""
    trace_events = []
    for event in _sorted_events(tracer):
        record = {
            "name": event.name,
            "cat": event.category,
            "ph": event.phase,
            "ts": event.ts / 1000.0,
            "pid": 1,
            "tid": _CATEGORY_TIDS.get(event.category, _DEFAULT_TID),
        }
        if event.args:
            record["args"] = event.args
        elif event.phase == "C":
            record["args"] = {"value": 0}
        trace_events.append(record)
    out = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {
            "emitted": tracer.emitted,
            "dropped": tracer.dropped,
        },
    }
    if registry is not None:
        out["otherData"]["metrics"] = registry.snapshot()
    return out


def write_chrome_trace(path: str, tracer: Tracer,
                       registry: Optional[MetricsRegistry] = None) -> str:
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(tracer, registry), handle)
    return path


def events_to_jsonl(tracer: Tracer) -> str:
    """One compact JSON object per line, oldest event first."""
    lines = []
    for event in _sorted_events(tracer):
        record = {
            "ts": event.ts,
            "cat": event.category,
            "name": event.name,
            "ph": event.phase,
        }
        if event.args:
            record["args"] = event.args
        lines.append(json.dumps(record, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: str, tracer: Tracer) -> str:
    with open(path, "w") as handle:
        handle.write(events_to_jsonl(tracer))
    return path


def _json_safe(value):
    """Replace non-finite floats with None so the file is strict JSON.

    Snapshot providers with zero samples can roll up to NaN/Inf (0/0
    rates etc.); ``json.dump`` would happily write ``NaN``, which most
    parsers then reject.
    """
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def write_metrics_json(path: str, registry: MetricsRegistry) -> str:
    with open(path, "w") as handle:
        json.dump(_json_safe(registry.snapshot()), handle, indent=2,
                  sort_keys=True, allow_nan=False)
    return path


def write_metrics_prometheus(path: str, registry: MetricsRegistry) -> str:
    with open(path, "w") as handle:
        handle.write(registry.prometheus_text())
    return path
