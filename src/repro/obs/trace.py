"""Bounded-ring event tracer with simulation-time (ns) timestamps.

Instrumentation points emit typed :class:`TraceEvent` records — packet
tx/rx, corruption drops, loss notifications, retransmission fires,
pause/resume spans, buffer-occupancy counters, corruptd decisions — into
a preallocated ring buffer.  When the tracer is disabled, ``emit`` is a
single attribute test and call sites guard with ``tracer.enabled``, so a
cold run allocates nothing and pays (close to) nothing.

Phases follow the Chrome trace-event convention so export is a direct
mapping: ``"i"`` instant, ``"B"``/``"E"`` duration begin/end, ``"C"``
counter sample.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

__all__ = ["TraceEvent", "Tracer", "NULL_TRACER"]


class TraceEvent(NamedTuple):
    ts: int                 # simulation time, integer nanoseconds
    category: str           # "link", "lg", "engine", "corruptd", ...
    name: str               # "retx_fire", "pause", "corruption_drop", ...
    phase: str              # "i" | "B" | "E" | "C"
    args: Optional[dict]    # small payload (seqno, bytes, ...)


class Tracer:
    """Fixed-capacity ring of :class:`TraceEvent`; oldest entries overwritten.

    ``sink`` is the live-observation hook: when set to a callable it
    receives every emitted event *before* it can be overwritten by ring
    wrap-around.  Runtime monitors (``repro.checker``) attach here so an
    invariant check never depends on the ring being large enough.
    """

    __slots__ = ("enabled", "capacity", "_ring", "_head", "emitted", "sink")

    def __init__(self, capacity: int = 1 << 16, enabled: bool = True) -> None:
        if enabled and capacity <= 0:
            raise ValueError("an enabled tracer needs capacity > 0")
        self.enabled = enabled
        self.capacity = int(capacity)
        self._ring: List[Optional[TraceEvent]] = [None] * self.capacity
        self._head = 0          # next write slot
        self.emitted = 0        # total emits, including overwritten ones
        self.sink = None        # optional callable(TraceEvent)

    @property
    def dropped(self) -> int:
        """Events overwritten because the ring wrapped."""
        return max(0, self.emitted - self.capacity)

    def emit(self, ts: int, category: str, name: str,
             phase: str = "i", args: Optional[dict] = None) -> None:
        if not self.enabled:
            return
        event = TraceEvent(ts, category, name, phase, args)
        self._ring[self._head] = event
        self._head = (self._head + 1) % self.capacity
        self.emitted += 1
        if self.sink is not None:
            self.sink(event)

    # convenience wrappers (call sites read better; all funnel into emit)

    def instant(self, ts: int, category: str, name: str,
                args: Optional[dict] = None) -> None:
        self.emit(ts, category, name, "i", args)

    def begin(self, ts: int, category: str, name: str,
              args: Optional[dict] = None) -> None:
        self.emit(ts, category, name, "B", args)

    def end(self, ts: int, category: str, name: str,
            args: Optional[dict] = None) -> None:
        self.emit(ts, category, name, "E", args)

    def counter(self, ts: int, category: str, name: str, value) -> None:
        self.emit(ts, category, name, "C", {"value": value})

    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first (emission order)."""
        if self.emitted < self.capacity:
            return [e for e in self._ring[: self._head]]
        return [
            e for e in self._ring[self._head:] + self._ring[: self._head]
            if e is not None
        ]

    def clear(self) -> None:
        self._ring = [None] * self.capacity
        self._head = 0
        self.emitted = 0


#: Shared disabled tracer: components default to this so the hot path is
#: one attribute test (``tracer.enabled``) with no per-component branch.
NULL_TRACER = Tracer(capacity=1, enabled=False)
