"""Schema validation for exported observability artifacts.

Pure-python structural validators (no jsonschema dependency) shared by
the ``repro obs`` CLI verbs, the CI ``obs-smoke`` job, and the tests.
Each validator returns a list of human-readable problems; an empty list
means the artifact is well-formed.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List

__all__ = [
    "validate_chrome_trace", "validate_events_jsonl", "validate_timeline",
    "validate_prometheus",
]

_KNOWN_PHASES = {"i", "B", "E", "C", "X", "s", "t", "f"}


def _check_record(record: Any, where: str, problems: List[str]) -> None:
    if not isinstance(record, dict):
        problems.append(f"{where}: not an object")
        return
    for field in ("name", "cat", "ph", "ts"):
        if field not in record:
            problems.append(f"{where}: missing field {field!r}")
            return
    if record["ph"] not in _KNOWN_PHASES:
        problems.append(f"{where}: unknown phase {record['ph']!r}")
    if not isinstance(record["ts"], (int, float)):
        problems.append(f"{where}: non-numeric ts")
    if record["ph"] == "X":
        dur = record.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"{where}: complete event needs dur >= 0")
    if record["ph"] in ("s", "t", "f") and "id" not in record:
        problems.append(f"{where}: flow event needs an id")


def _check_flows(records: List[Dict[str, Any]],
                 problems: List[str]) -> None:
    """Flow chains must reload intact: per id exactly one start, steps
    inside [start, finish], at most one finish, finish last."""
    flows: Dict[Any, Dict[str, List[float]]] = {}
    for record in records:
        if not isinstance(record, dict):
            continue
        ph = record.get("ph")
        if ph in ("s", "t", "f") and "id" in record:
            group = flows.setdefault(record["id"], {"s": [], "t": [], "f": []})
            group[ph].append(record.get("ts", 0))
    for flow_id, group in flows.items():
        if len(group["s"]) != 1:
            problems.append(
                f"flow {flow_id}: expected exactly one start, "
                f"got {len(group['s'])}")
            continue
        if len(group["f"]) > 1:
            problems.append(f"flow {flow_id}: multiple finish events")
            continue
        start = group["s"][0]
        finish = group["f"][0] if group["f"] else None
        for ts in group["t"]:
            if ts < start:
                problems.append(f"flow {flow_id}: step at {ts} before start")
            if finish is not None and ts > finish:
                problems.append(f"flow {flow_id}: step at {ts} after finish")
        if finish is not None and finish < start:
            problems.append(f"flow {flow_id}: finish before start")


def _check_span_parents(span_args: List[Dict[str, Any]],
                        problems: List[str]) -> None:
    ids = {args["span_id"] for args in span_args if "span_id" in args}
    for args in span_args:
        parent = args.get("parent_id")
        if parent is not None and parent not in ids:
            problems.append(
                f"span {args.get('span_id')}: parent {parent} not in artifact")


def validate_chrome_trace(data: Any) -> List[str]:
    """Validate a Perfetto/chrome-trace export (the ``--trace-out``
    ``.json`` artifact), including span flow-link integrity."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["top level: not an object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: missing traceEvents list"]
    span_args: List[Dict[str, Any]] = []
    last_ts = None
    for index, record in enumerate(events):
        _check_record(record, f"traceEvents[{index}]", problems)
        if not isinstance(record, dict):
            continue
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            if last_ts is not None and ts < last_ts:
                problems.append(f"traceEvents[{index}]: ts not sorted")
            last_ts = ts
        args = record.get("args")
        if isinstance(args, dict) and "span_id" in args:
            span_args.append(args)
    _check_flows([r for r in events if isinstance(r, dict)], problems)
    _check_span_parents(span_args, problems)
    return problems


def validate_events_jsonl(text: str) -> List[str]:
    """Validate a ``--trace-out`` ``.jsonl`` artifact: native-ns event
    records plus optional ``kind: span`` records."""
    problems: List[str] = []
    span_records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            problems.append(f"line {lineno}: not valid JSON")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {lineno}: not an object")
            continue
        if record.get("kind") == "span":
            for field in ("span_id", "trace_id", "cat", "name", "start_ns"):
                if field not in record:
                    problems.append(f"line {lineno}: span missing {field!r}")
            end = record.get("end_ns")
            start = record.get("start_ns")
            if (isinstance(end, (int, float)) and isinstance(start, (int, float))
                    and end < start):
                problems.append(f"line {lineno}: span ends before it starts")
            span_records.append(record)
            continue
        for field in ("ts", "cat", "name", "ph"):
            if field not in record:
                problems.append(f"line {lineno}: event missing {field!r}")
    _check_span_parents(span_records, problems)
    return problems


def validate_timeline(data: Any) -> List[str]:
    """Validate a :meth:`TimelineRecorder.series` artifact (the
    ``--timeline-out`` JSON)."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["top level: not an object"]
    interval = data.get("interval_ns")
    if not isinstance(interval, int) or interval <= 0:
        problems.append("interval_ns: must be a positive integer")
    ts = data.get("ts_ns")
    runs = data.get("run")
    metrics = data.get("metrics")
    if not isinstance(ts, list):
        problems.append("ts_ns: missing sample timestamps")
        return problems
    if not isinstance(runs, list) or len(runs) != len(ts):
        problems.append("run: must align with ts_ns")
    if not isinstance(metrics, dict):
        problems.append("metrics: missing column map")
        return problems
    for name, column in metrics.items():
        if not isinstance(column, list) or len(column) != len(ts):
            problems.append(
                f"metrics[{name}]: column length != {len(ts)} samples")
    # Within one run, simulated time must not go backwards.
    prev: Dict[Any, Any] = {}
    if isinstance(runs, list) and len(runs) == len(ts):
        for index, (run, ts_ns) in enumerate(zip(runs, ts)):
            if not isinstance(ts_ns, (int, float)):
                problems.append(f"ts_ns[{index}]: non-numeric")
                continue
            if run in prev and ts_ns < prev[run]:
                problems.append(f"ts_ns[{index}]: time reversed within run")
            prev[run] = ts_ns
    return problems


# Prometheus text exposition grammar, per the format spec: a metric name,
# an optional {label="value",...} set with \\ \" \n escaping inside the
# quotes, and a value Go's ParseFloat accepts (incl. NaN/+Inf/-Inf).
_PROM_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_PROM_LABEL_VALUE = r'"(?:[^"\\\n]|\\\\|\\"|\\n)*"'
_PROM_LABELS = (r"\{(?:" + _PROM_NAME + r"=" + _PROM_LABEL_VALUE + r")"
                r"(?:," + _PROM_NAME + r"=" + _PROM_LABEL_VALUE + r")*,?\}")
_PROM_VALUE = r"[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf|NaN)"
_PROM_SAMPLE = re.compile(
    r"^(" + _PROM_NAME + r")(?:" + _PROM_LABELS + r")?"
    r"\s+" + _PROM_VALUE + r"(?:\s+[+-]?[0-9]+)?$")
_PROM_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def validate_prometheus(text: str) -> List[str]:
    """Validate a text-exposition body (what ``/metrics`` serves).

    Line-grammar checks only — enough to catch the failure modes the
    registry can actually produce: unescaped label values, non-numeric
    samples, malformed TYPE comments, a body missing its trailing
    newline.
    """
    problems: List[str] = []
    if text and not text.endswith("\n"):
        problems.append("body: missing trailing newline")
    for index, line in enumerate(text.splitlines()):
        where = f"line {index + 1}"
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _PROM_TYPES:
                    problems.append(f"{where}: malformed TYPE comment")
            # HELP and free comments pass through unchecked.
            continue
        if not _PROM_SAMPLE.match(line):
            problems.append(f"{where}: malformed sample: {line[:80]!r}")
    return problems
