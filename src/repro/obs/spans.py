"""Causal recovery-episode spans.

The flat event ring (:mod:`repro.obs.trace`) answers "what happened";
spans answer "what caused what".  A :class:`SpanTracer` issues records
with ``span_id`` / ``parent_id`` / ``trace_id`` so a corruption drop,
the LinkGuardian loss notification, each retransmission copy, the
reordering-buffer release, and any pause/resume it triggers link into
one recovery-episode tree (one ``trace_id`` per episode).

Design constraints:

* The tracer's ``sink`` hook is owned by the checker (it chains it);
  spans therefore keep their *own* bounded storage and never touch the
  event ring.
* Components correlate a retransmission back to its episode through a
  key map: ``bind((scope, era, seqno), span)`` at the corruption drop,
  ``lookup``/``unbind`` downstream.  ``scope`` is the forward-link name,
  so parallel protected links never cross wires.
* Everything is guarded by ``enabled`` — a disabled tracer costs one
  attribute read per call site (the overhead budget in DESIGN §5h).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Hashable, List, Optional

__all__ = ["Span", "SpanTracer", "NULL_SPANS"]


class Span:
    """One node in a recovery-episode tree.

    ``end_ns is None`` means the span is still open.  Instant children
    (a drop, a retx fire) are spans whose ``end_ns == start_ns``.
    """

    __slots__ = ("span_id", "parent_id", "trace_id", "category", "name",
                 "start_ns", "end_ns", "args")

    def __init__(self, span_id: int, parent_id: Optional[int], trace_id: int,
                 category: str, name: str, start_ns: int,
                 args: Optional[Dict[str, Any]] = None) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.category = category
        self.name = name
        self.start_ns = int(start_ns)
        self.end_ns: Optional[int] = None
        self.args = args

    @property
    def open(self) -> bool:
        return self.end_ns is None

    @property
    def duration_ns(self) -> int:
        return 0 if self.end_ns is None else self.end_ns - self.start_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "cat": self.category,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "args": self.args or {},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else f"dur={self.duration_ns}ns"
        return (f"Span({self.span_id} parent={self.parent_id} "
                f"trace={self.trace_id} {self.category}/{self.name} {state})")


class SpanTracer:
    """Bounded store of causal spans plus the episode correlation map.

    Completed spans live in a ring (oldest evicted first, counted in
    ``dropped``); open spans are pinned until finished so an episode
    tree is never torn in half by eviction pressure.
    """

    __slots__ = ("enabled", "capacity", "started", "dropped",
                 "_next_id", "_completed", "_open", "_binds", "_scope_roots")

    def __init__(self, capacity: int = 4096, enabled: bool = True) -> None:
        self.enabled = enabled
        self.capacity = int(capacity)
        self.started = 0
        self.dropped = 0
        self._next_id = 1
        self._completed: deque = deque()
        self._open: Dict[int, Span] = {}
        self._binds: Dict[Hashable, Span] = {}
        self._scope_roots: Dict[str, Span] = {}

    # -- recording -------------------------------------------------------

    def begin(self, ts: int, category: str, name: str,
              parent: Optional[Span] = None, args: Optional[Dict] = None,
              scope: Optional[str] = None) -> Span:
        """Open a span.  With no ``parent`` it is an episode root (its
        ``trace_id`` is its own id); with ``scope`` it also becomes the
        scope's *current* root until finished (pause spans attach to
        it)."""
        span_id = self._next_id
        self._next_id += 1
        trace_id = parent.trace_id if parent is not None else span_id
        parent_id = parent.span_id if parent is not None else None
        span = Span(span_id, parent_id, trace_id, category, name, ts, args)
        self.started += 1
        self._open[span_id] = span
        if scope is not None and parent is None:
            self._scope_roots[scope] = span
        return span

    def event(self, ts: int, category: str, name: str,
              parent: Optional[Span] = None,
              args: Optional[Dict] = None) -> Span:
        """Record an instant child (``end == start``)."""
        span = self.begin(ts, category, name, parent=parent, args=args)
        self.end(span, ts)
        return span

    def end(self, span: Span, ts: int,
            args: Optional[Dict] = None) -> None:
        """Finish an open span; merges ``args`` into the span's."""
        if span.end_ns is not None:
            return
        span.end_ns = int(ts)
        if args:
            span.args = {**(span.args or {}), **args}
        self._open.pop(span.span_id, None)
        for scope, root in list(self._scope_roots.items()):
            if root is span:
                del self._scope_roots[scope]
        self._completed.append(span)
        while len(self._completed) > self.capacity:
            self._completed.popleft()
            self.dropped += 1

    # -- correlation -----------------------------------------------------

    def bind(self, key: Hashable, span: Span) -> None:
        self._binds[key] = span

    def lookup(self, key: Hashable) -> Optional[Span]:
        return self._binds.get(key)

    def unbind(self, key: Hashable) -> None:
        self._binds.pop(key, None)

    def current(self, scope: str) -> Optional[Span]:
        """The most recent still-open episode root for ``scope`` (the
        parent for pause/resume spans), or None."""
        return self._scope_roots.get(scope)

    # -- reading ---------------------------------------------------------

    def spans(self) -> List[Span]:
        """All retained spans: completed (oldest first) then still-open,
        ordered by start time for stable export."""
        live = sorted(self._open.values(),
                      key=lambda s: (s.start_ns, s.span_id))
        return list(self._completed) + live

    def trees(self) -> Dict[int, List[Span]]:
        """Retained spans grouped by ``trace_id`` (one entry per
        episode), each group ordered by start time."""
        groups: Dict[int, List[Span]] = {}
        for span in self.spans():
            groups.setdefault(span.trace_id, []).append(span)
        for group in groups.values():
            group.sort(key=lambda s: (s.start_ns, s.span_id))
        return groups

    def clear(self) -> None:
        self._completed.clear()
        self._open.clear()
        self._binds.clear()
        self._scope_roots.clear()
        self.started = 0
        self.dropped = 0


#: Shared disabled instance — call sites hold a reference and check
#: ``.enabled`` so the off path costs one attribute read.
NULL_SPANS = SpanTracer(capacity=1, enabled=False)
