"""Metric primitives and the hierarchical registry.

Every component that wants to be measurable registers with one
:class:`MetricsRegistry` under a dotted, hierarchical name
(``lg.sender.<link>``, ``port.<switch:port>.queue.<name>`` …).  Three
primitive types cover everything the paper's evaluation reads off the
testbed:

* :class:`Counter` — monotonically increasing event counts;
* :class:`Gauge` — a level with a high-watermark (queue depth, heap size);
* :class:`Histogram` — fixed-bucket distributions over integer
  nanoseconds (retransmission delay, FCT, queue residence), cheap enough
  to observe on the datapath.

Components that already keep their own stats structs (``SenderStats``,
``PortCounters``) register a *snapshot provider* instead — a callable
returning a dict — so the registry reads the single source of truth and
nothing is double-counted.
"""

from __future__ import annotations

from bisect import bisect_left
from hashlib import sha256
from math import isfinite
from typing import Callable, Dict, List, Sequence, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_NS_BUCKETS",
]

#: Upper bucket bounds (inclusive, ns) covering 100 ns .. 1 s — wide
#: enough for serialization times, sub-RTT recovery delays and FCTs.
DEFAULT_NS_BUCKETS: Tuple[int, ...] = (
    100, 250, 500,
    1_000, 2_500, 5_000,
    10_000, 25_000, 50_000,
    100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
    10_000_000, 100_000_000, 1_000_000_000,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A level that can move both ways; tracks its high watermark.

    The watermark is the maximum *observed* value: a gauge that only
    ever goes negative reports its true (negative) maximum, not the
    zero it was initialized with.
    """

    __slots__ = ("name", "value", "high_watermark", "_seen")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.high_watermark = 0
        self._seen = False

    def set(self, value) -> None:
        self.value = value
        if not self._seen or value > self.high_watermark:
            self.high_watermark = value
            self._seen = True

    def add(self, delta) -> None:
        self.set(self.value + delta)

    def snapshot(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value,
            "high_watermark": self.high_watermark,
        }


class Histogram:
    """Fixed-bucket histogram over non-negative integers (typically ns).

    Bucket bounds are inclusive upper edges; one implicit overflow bucket
    catches everything above the last bound.  ``observe`` is a bisect
    plus two additions — cheap enough for per-packet datapath use.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(self, name: str, bounds: Sequence[int] = DEFAULT_NS_BUCKETS) -> None:
        if list(bounds) != sorted(bounds) or len(bounds) != len(set(bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds: Tuple[int, ...] = tuple(int(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)  # + overflow
        self.count = 0
        self.sum = 0

    def observe(self, value: int) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-th percentile.

        Returns NaN when empty and +inf when the percentile falls in the
        overflow bucket (the histogram cannot bound it).
        """
        if self.count == 0:
            return float("nan")
        threshold = q / 100.0 * self.count
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            if cumulative >= threshold:
                return float(bound)
        return float("inf")

    def snapshot(self) -> dict:
        cumulative, buckets = 0, {}
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            buckets[bound] = cumulative
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "buckets": buckets,       # cumulative, Prometheus-style
            "overflow": self.counts[-1],
        }


class MetricsRegistry:
    """Hierarchically named metrics plus external snapshot providers."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._providers: Dict[str, Callable[[], dict]] = {}

    # -- creation (get-or-create so shared names accumulate) -------------------

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, bounds: Sequence[int] = DEFAULT_NS_BUCKETS) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, bounds)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(f"{name!r} already registered as {type(metric).__name__}")
        return metric

    def _get_or_create(self, name, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"{name!r} already registered as {type(metric).__name__}")
        return metric

    def get(self, name: str):
        return self._metrics.get(name)

    def register_provider(self, name: str, provider: Callable[[], dict]) -> None:
        """Attach a live stats source (e.g. ``SenderStats.snapshot``).

        Re-registering the same name replaces the provider — the newest
        component instance owns the name.
        """
        self._providers[name] = provider

    # -- output -----------------------------------------------------------------

    def snapshot(self) -> dict:
        """Flat ``name -> snapshot dict`` of everything known right now."""
        out = {name: metric.snapshot() for name, metric in self._metrics.items()}
        for name, provider in self._providers.items():
            out[name] = provider()
        return out

    def _exposition_names(self) -> Dict[str, str]:
        """Unique exposition family name per dotted name.

        ``_sanitize`` is lossy (``lg.sender`` and ``lg_sender`` both map
        to ``lg_sender``), which would silently emit duplicate series.
        Metric and provider names share one namespace here; the first
        colliding name in sorted order keeps the plain form, later ones
        get a short deterministic digest suffix.
        """
        taken: Dict[str, str] = {}
        out: Dict[str, str] = {}
        for original in sorted(set(self._metrics) | set(self._providers)):
            flat = _sanitize(original)
            if flat in taken and taken[flat] != original:
                flat = f"{flat}_{sha256(original.encode()).hexdigest()[:6]}"
            taken.setdefault(flat, original)
            out[original] = flat
        return out

    def prometheus_text(self) -> str:
        """Prometheus text-exposition dump of every numeric value."""
        lines: List[str] = []
        exposition = self._exposition_names()
        for name, metric in sorted(self._metrics.items()):
            flat = exposition[name]
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {flat} counter")
                lines.append(f"{flat} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {flat} gauge")
                lines.append(f"{flat} {metric.value}")
                lines.append(f"{flat}_high_watermark {metric.high_watermark}")
            elif isinstance(metric, Histogram):
                lines.append(f"# TYPE {flat} histogram")
                cumulative = 0
                for bound, bucket_count in zip(metric.bounds, metric.counts):
                    cumulative += bucket_count
                    lines.append(f'{flat}_bucket{{le="{bound}"}} {cumulative}')
                lines.append(f'{flat}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{flat}_sum {metric.sum}")
                lines.append(f"{flat}_count {metric.count}")
        for name, provider in sorted(self._providers.items()):
            for key, value in _flatten(provider(), exposition[name]):
                lines.append(f"{key} {value}")
        # An empty registry (no metrics, no providers — or providers whose
        # snapshots carried nothing numeric) exports as the empty string,
        # not a lone newline.
        return "\n".join(lines) + ("\n" if lines else "")


def _sanitize(name: str) -> str:
    if not name:
        return "_"
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    return text if not text[:1].isdigit() else "_" + text


def _flatten(tree: dict, prefix: str):
    for key, value in tree.items():
        flat = f"{prefix}_{_sanitize(str(key))}"
        if isinstance(value, dict):
            yield from _flatten(value, flat)
        elif isinstance(value, bool):
            yield flat, int(value)
        elif isinstance(value, (int, float)):
            # A rollup with zero samples divides into NaN/Inf; Python's
            # repr of those is not valid exposition text, so skip them.
            if isinstance(value, float) and not isfinite(value):
                continue
            yield flat, value
