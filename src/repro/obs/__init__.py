"""Unified simulation observability: metrics, traces, spans, timelines.

One :class:`Observability` object is threaded through a run — engine,
switch model, LinkGuardian endpoints, corruptd — and everything records
into its shared :class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.trace.Tracer`.  Components accept ``obs=None`` and
fall back to :data:`~repro.obs.trace.NULL_TRACER` / skip registration,
so an uninstrumented run pays only a disabled-flag test on the hot path.

obs v2 adds two opt-in layers (both off by default, same null-object
discipline):

* :class:`~repro.obs.spans.SpanTracer` (``spans=True``) — causal
  recovery-episode trees linking a corruption drop to its loss
  notification, retransmissions, in-order release, and pause/resume;
* :class:`~repro.obs.timeline.TimelineRecorder` (``timeline=...``) — a
  flight recorder sampling the registry on a simulated-time cadence.

Typical usage::

    obs = Observability(spans=True, timeline={"interval_ns": 100_000})
    result = run_timeline("dctcp", obs=obs)
    write_chrome_trace("trace.json", obs.tracer, obs.registry,
                       spans=obs.spans)                        # Perfetto
    print(obs.registry.prometheus_text())
"""

from __future__ import annotations

from typing import Optional, Union

from .export import (
    events_to_jsonl, prometheus_escape_label, prometheus_line,
    prometheus_text, to_chrome_trace, write_chrome_trace, write_jsonl,
    write_metrics_json, write_metrics_prometheus, write_timeline_json,
)
from .metrics import (
    DEFAULT_NS_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry,
)
from .profile import PhaseTimer
from .spans import NULL_SPANS, Span, SpanTracer
from .timeline import TimelineRecorder
from .trace import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "Observability",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "DEFAULT_NS_BUCKETS",
    "Tracer", "TraceEvent", "NULL_TRACER",
    "SpanTracer", "Span", "NULL_SPANS",
    "TimelineRecorder", "PhaseTimer",
    "to_chrome_trace", "write_chrome_trace", "events_to_jsonl", "write_jsonl",
    "write_metrics_json", "write_metrics_prometheus", "write_timeline_json",
    "prometheus_escape_label", "prometheus_line", "prometheus_text",
]


class Observability:
    """Registry + tracer (+ optional spans and timeline) for one run.

    ``timeline`` accepts ``None`` (off), ``True`` (defaults), or a dict
    of :class:`TimelineRecorder` keyword arguments (``interval_ns``,
    ``capacity``, ``include``).
    """

    def __init__(self, tracing: bool = True, trace_capacity: int = 1 << 16,
                 spans: bool = False, span_capacity: int = 4096,
                 timeline: Union[None, bool, dict] = None) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(capacity=trace_capacity, enabled=tracing)
        self.spans = SpanTracer(capacity=span_capacity, enabled=spans)
        self.timeline: Optional[TimelineRecorder] = None
        if timeline:
            kwargs = dict(timeline) if isinstance(timeline, dict) else {}
            self.timeline = TimelineRecorder(self.registry, **kwargs)

    def attach_engine(self, sim) -> None:
        """Called by each :class:`~repro.core.engine.Simulator` built
        with this obs: installs the timeline recorder's sampling tick
        onto the new simulator."""
        if self.timeline is not None:
            self.timeline.install(sim)

    def snapshot(self) -> dict:
        return self.registry.snapshot()
