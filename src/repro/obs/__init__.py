"""Unified simulation observability: metrics registry + event tracer.

One :class:`Observability` object is threaded through a run — engine,
switch model, LinkGuardian endpoints, corruptd — and everything records
into its shared :class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.trace.Tracer`.  Components accept ``obs=None`` and
fall back to :data:`~repro.obs.trace.NULL_TRACER` / skip registration,
so an uninstrumented run pays only a disabled-flag test on the hot path.

Typical usage::

    obs = Observability()
    result = run_timeline("dctcp", obs=obs)
    write_chrome_trace("trace.json", obs.tracer, obs.registry)  # Perfetto
    print(obs.registry.prometheus_text())
"""

from __future__ import annotations

from .export import (
    events_to_jsonl, to_chrome_trace, write_chrome_trace, write_jsonl,
    write_metrics_json, write_metrics_prometheus,
)
from .metrics import (
    DEFAULT_NS_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry,
)
from .trace import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "Observability",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "DEFAULT_NS_BUCKETS",
    "Tracer", "TraceEvent", "NULL_TRACER",
    "to_chrome_trace", "write_chrome_trace", "events_to_jsonl", "write_jsonl",
    "write_metrics_json", "write_metrics_prometheus",
]


class Observability:
    """A registry plus a tracer, handed to every component of one run."""

    def __init__(self, tracing: bool = True, trace_capacity: int = 1 << 16) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(capacity=trace_capacity, enabled=tracing)

    def snapshot(self) -> dict:
        return self.registry.snapshot()
