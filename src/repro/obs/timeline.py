"""Flight recorder: longitudinal sampling of the metrics registry.

End-of-run snapshots flatten a whole experiment to one number per
metric; the paper's deployment and episode stories are longitudinal
(loss rate *over time*, pause duty cycle *during* an episode, LG
activation flapping).  :class:`TimelineRecorder` samples every numeric
leaf of a :class:`~repro.obs.metrics.MetricsRegistry` snapshot on a
simulated-time cadence into a bounded ring of samples, yielding aligned
per-metric series cheap enough to leave on.

The recorder is installed onto a simulator (:meth:`install`), schedules
its own ticks, and survives multi-simulator experiments (FCT builds one
testbed per transport/scenario): each install bumps a ``run`` counter
recorded with every sample, so series from consecutive simulators stay
distinguishable even though simulated time restarts at zero.

Month-scale runs outlive any fixed ring: at one sample per simulated
day a 90-day lifecycle replay fits easily, but per-episode cadences do
not, so overflow behaviour is a policy:

* ``policy="drop"`` (default, the original behaviour) evicts the oldest
  sample — the ring becomes a sliding window over the run's tail;
* ``policy="decimate"`` halves the retained resolution instead: every
  other sample is discarded and the effective interval doubles, so the
  ring always spans the *whole* run at progressively coarser cadence —
  the right trade for longitudinal SLO series;
* ``spill=<path>`` (composable with ``policy="drop"``) appends each
  evicted sample to a JSONL file, so nothing is lost even when the
  in-memory ring is tight.
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["TimelineRecorder", "numeric_leaves"]


def numeric_leaves(snapshot: Dict[str, Any],
                   prefix: str = "") -> Dict[str, float]:
    """Flatten a registry snapshot to dotted-name numeric leaves.

    Bools become 0/1 (LG activation state is a bool), non-finite floats
    are skipped, histograms contribute ``count``/``sum`` but not their
    bucket arrays.
    """
    flat: Dict[str, float] = {}
    for key, value in snapshot.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            if value.get("type") == "histogram":
                flat[f"{name}.count"] = value.get("count", 0)
                total = value.get("sum", 0)
                if isinstance(total, (int, float)) and math.isfinite(total):
                    flat[f"{name}.sum"] = total
                continue
            flat.update(numeric_leaves(
                {k: v for k, v in value.items() if k != "type"},
                prefix=f"{name}."))
            continue
        if isinstance(value, bool):
            flat[name] = int(value)
        elif isinstance(value, (int, float)) and math.isfinite(value):
            flat[name] = value
    return flat


class TimelineRecorder:
    """Bounded ring-of-snapshots sampler over a metrics registry."""

    __slots__ = ("registry", "interval_ns", "capacity", "enabled",
                 "include", "policy", "spill", "runs", "sampled", "dropped",
                 "decimations", "_samples", "_spill_handle")

    def __init__(self, registry, interval_ns: int = 1_000_000,
                 capacity: int = 4096,
                 include: Optional[Sequence[str]] = None,
                 policy: str = "drop",
                 spill: Optional[str] = None) -> None:
        if interval_ns <= 0:
            raise ValueError("timeline interval_ns must be positive")
        if capacity < 2:
            raise ValueError("timeline capacity must be >= 2")
        if policy not in ("drop", "decimate"):
            raise ValueError(
                f"unknown timeline policy {policy!r}; known: drop, decimate")
        self.registry = registry
        self.interval_ns = int(interval_ns)
        self.capacity = int(capacity)
        self.include = tuple(include) if include else None
        self.policy = policy
        self.spill = spill
        self.enabled = True
        self.runs = 0
        self.sampled = 0
        self.dropped = 0
        #: times the ring halved its resolution (policy="decimate")
        self.decimations = 0
        #: ring of (run, ts_ns, {name: value}) tuples
        self._samples: deque = deque()
        self._spill_handle = None

    # -- recording -------------------------------------------------------

    def install(self, sim) -> None:
        """Attach to a simulator: sample now, then on every interval.

        Each install starts a new ``run`` (simulated time restarts per
        simulator); ticks stop rescheduling once :meth:`stop` is called.
        The reschedule reads ``interval_ns`` each tick, so a decimation
        pass slows future sampling to the coarser cadence too.
        """
        if not self.enabled:
            return
        self.runs += 1
        run = self.runs

        def tick() -> None:
            if not self.enabled or run != self.runs:
                return  # stopped, or a newer simulator took over
            self.sample(sim.now, run=run)
            sim.schedule(self.interval_ns, tick)

        tick()

    def sample(self, ts_ns: int, run: Optional[int] = None) -> None:
        """Take one snapshot of the registry at simulated time ``ts_ns``."""
        flat = numeric_leaves(self.registry.snapshot())
        if self.include is not None:
            flat = {k: v for k, v in flat.items()
                    if any(k.startswith(p) for p in self.include)}
        self._samples.append((run if run is not None else self.runs,
                              int(ts_ns), flat))
        self.sampled += 1
        if self.policy == "decimate":
            if len(self._samples) > self.capacity:
                self._decimate()
        else:
            while len(self._samples) > self.capacity:
                self._evict(self._samples.popleft())

    def _evict(self, sample: Tuple[int, int, Dict[str, float]]) -> None:
        self.dropped += 1
        if self.spill is not None:
            if self._spill_handle is None:
                self._spill_handle = open(self.spill, "a")
            run, ts_ns, flat = sample
            self._spill_handle.write(json.dumps(
                {"run": run, "ts_ns": ts_ns, "metrics": flat},
                sort_keys=True, separators=(",", ":")) + "\n")

    def _decimate(self) -> None:
        """Halve resolution: keep every other sample, double the interval.

        The first retained sample stays the oldest one, so the ring keeps
        covering the run from its start; the effective cadence doubles,
        which :meth:`install` picks up on its next reschedule.
        """
        kept = deque(sample for index, sample in enumerate(self._samples)
                     if index % 2 == 0)
        removed = len(self._samples) - len(kept)
        self._samples = kept
        self.dropped += removed
        self.interval_ns *= 2
        self.decimations += 1

    def stop(self) -> None:
        """Disable further sampling; pending ticks become no-ops."""
        self.enabled = False
        if self._spill_handle is not None:
            self._spill_handle.close()
            self._spill_handle = None

    # -- reading ---------------------------------------------------------

    def samples(self) -> List[Tuple[int, int, Dict[str, float]]]:
        return list(self._samples)

    def series(self) -> Dict[str, Any]:
        """Column-oriented view: aligned arrays per metric name.

        Metrics absent at a given sample (a provider registered
        mid-run) are padded with None so every column has one entry per
        retained sample.
        """
        runs: List[int] = []
        ts: List[int] = []
        columns: Dict[str, List[Optional[float]]] = {}
        for index, (run, ts_ns, flat) in enumerate(self._samples):
            runs.append(run)
            ts.append(ts_ns)
            for name, value in flat.items():
                column = columns.setdefault(name, [None] * index)
                column.append(value)
            for name, column in columns.items():
                if len(column) <= index:
                    column.append(None)
        return {
            "interval_ns": self.interval_ns,
            "capacity": self.capacity,
            "policy": self.policy,
            "sampled": self.sampled,
            "dropped": self.dropped,
            "decimations": self.decimations,
            "run": runs,
            "ts_ns": ts,
            "metrics": columns,
        }
