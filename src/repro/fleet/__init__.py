"""Fleet-scale fabric campaigns with fleet-wide corruptd orchestration.

``repro.fleet`` scales the per-link machinery to whole datacenters:

* :mod:`~repro.fleet.topology` — multi-pod Clos fleets whose links carry
  independent, heavy-tailed corruption processes from named RNG streams;
* :mod:`~repro.fleet.controller` — the fleet-wide arbitration loop
  (LinkGuardian activation vs CorrOpt disable) with pluggable policies;
* :mod:`~repro.fleet.campaign` — sharded campaign execution through the
  runner layer, rolled up into fleet SLOs, bit-identical for any
  shard/worker count.

Quickstart::

    from repro.fleet import FleetCampaignSpec, FleetSpec, run_fleet_campaign

    campaign = FleetCampaignSpec(
        fleet=FleetSpec(n_pods=4, tors_per_pod=8), n_shards=4)
    result = run_fleet_campaign(campaign, workers=4)
    print(result.summary())
"""

from .campaign import (
    FleetCampaignResult, FleetCampaignSpec, run_fleet_campaign, run_shard,
    shard_bounds, unprotected_goodput_fraction,
)
from .controller import (
    POLICIES, ControllerConfig, FleetController, FleetPolicy,
    GreedyWorstLinkPolicy, IncrementalDeploymentPolicy,
)
from .policies import (
    PolicyCandidate, TraceDrivenOptimizer, default_candidates, fleet_policy,
    optimize_policies, register_policy,
)
from .topology import (
    CorruptionEpisode, FleetSpec, FleetTopology, LinkProfile, link_episodes,
    sample_affected_fraction, sample_profile,
)

__all__ = [
    "FleetCampaignResult", "FleetCampaignSpec", "run_fleet_campaign",
    "run_shard", "shard_bounds", "unprotected_goodput_fraction",
    "POLICIES", "ControllerConfig", "FleetController", "FleetPolicy",
    "GreedyWorstLinkPolicy", "IncrementalDeploymentPolicy",
    "PolicyCandidate", "TraceDrivenOptimizer", "default_candidates",
    "fleet_policy", "optimize_policies", "register_policy",
    "CorruptionEpisode", "FleetSpec", "FleetTopology", "LinkProfile",
    "link_episodes", "sample_affected_fraction", "sample_profile",
]
