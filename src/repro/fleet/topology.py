"""Fleet-scale topology generation (paper §6 at datacenter scale).

A *fleet* is a multi-pod Clos fabric (``FleetSpec`` parameterizes pods ×
fabric switches × ToRs, so hundreds to thousands of links) in which every
link carries its own independent corruption process.  Per-link behaviour
is sampled from a configurable fleet-wide distribution:

* **loss rates** are heavy-tailed — either the Table 1 bucket
  distribution measured across 350K production links (log-uniform within
  buckets) or a bounded Pareto tail for what-if studies;
* **burstiness** is a per-link Gilbert–Elliott mean burst length drawn
  log-uniformly from a configurable range (§3.5 observed short geometric
  bursts).

Determinism is the load-bearing property: every draw comes from a named
:class:`~repro.core.rng.RngFactory` stream keyed by ``link_id`` — never
by shard or iteration order — so a link's profile and corruption
episodes are identical no matter how the fleet campaign is partitioned
across worker processes.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List

import numpy as np

from ..core.rng import RngFactory
from ..corropt.trace import HOURS, sample_loss_rates
from ..fabric.topology import FabricTopology

__all__ = [
    "FleetSpec", "LinkProfile", "CorruptionEpisode", "FleetTopology",
    "sample_profile", "link_episodes", "sample_affected_fraction",
]

DAY_S = 24 * HOURS

#: format tag carried by FleetSpec.to_json documents
FLEET_SPEC_VERSION = 1


@dataclass(frozen=True)
class FleetSpec:
    """Shape and stochastic parameters of one simulated fleet."""

    n_pods: int = 4
    tors_per_pod: int = 8
    fabrics_per_pod: int = 4
    spine_uplinks: int = 8
    #: mean time between corruption onsets per link (Meza et al. use 10k
    #: hours; campaigns default lower so a 30-day window has activity)
    mttf_hours: float = 1_500.0
    #: hours to repair once a link is corrupting (fast / slow crews)
    repair_fast_hours: float = 48.0
    repair_slow_hours: float = 96.0
    repair_fast_fraction: float = 0.8
    #: "table1" = production bucket distribution; "pareto" = bounded
    #: Pareto(alpha) tail between loss_floor and loss_cap
    loss_distribution: str = "table1"
    pareto_alpha: float = 1.2
    loss_floor: float = 1e-7
    loss_cap: float = 1e-2
    #: per-link Gilbert-Elliott mean burst length, log-uniform in range
    mean_burst_min: float = 1.0
    mean_burst_max: float = 2.0

    def __post_init__(self) -> None:
        if min(self.n_pods, self.tors_per_pod, self.fabrics_per_pod,
               self.spine_uplinks) < 1:
            raise ValueError("fleet dimensions must all be >= 1")
        if self.loss_distribution not in ("table1", "pareto"):
            raise ValueError(
                f"unknown loss_distribution {self.loss_distribution!r}")
        if not 0 < self.loss_floor < self.loss_cap <= 1.0:
            raise ValueError("need 0 < loss_floor < loss_cap <= 1")
        if not 1.0 <= self.mean_burst_min <= self.mean_burst_max:
            raise ValueError("need 1 <= mean_burst_min <= mean_burst_max")

    @property
    def n_links(self) -> int:
        per_pod = (self.tors_per_pod * self.fabrics_per_pod
                   + self.fabrics_per_pod * self.spine_uplinks)
        return self.n_pods * per_pod

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FleetSpec fields: {sorted(unknown)}")
        return cls(**data)

    def to_json(self) -> str:
        """Canonical one-document form for saving a topology to disk.

        Carries a format tag so a trace or replay started elsewhere can
        verify it is binding to a fleet spec (and not some other JSON) —
        :meth:`from_json` round-trips byte-identically.
        """
        return json.dumps({"fleet_spec": FLEET_SPEC_VERSION, **self.to_dict()},
                          sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FleetSpec":
        """Parse and validate a :meth:`to_json` document.

        Validation is the full constructor path: the version tag must
        match, field names must be known, and ``__post_init__`` range
        checks run — a corrupted or hand-edited file fails loudly here
        rather than as a mis-shaped fleet three layers down.
        """
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ValueError("fleet spec JSON must be an object")
        version = data.pop("fleet_spec", None)
        if version != FLEET_SPEC_VERSION:
            raise ValueError(
                f"not a fleet spec document (fleet_spec tag {version!r}, "
                f"expected {FLEET_SPEC_VERSION})")
        return cls.from_dict(data)

    def with_(self, **overrides: Any) -> "FleetSpec":
        return replace(self, **overrides)


@dataclass(frozen=True)
class LinkProfile:
    """Static stochastic character of one link, fixed for a campaign."""

    link_id: int
    loss_rate: float     # characteristic episode loss rate (heavy-tailed)
    mean_burst: float    # Gilbert-Elliott mean burst length (packets)


@dataclass(frozen=True)
class CorruptionEpisode:
    """One corruption event on one link: onset until repair completion."""

    link_id: int
    onset_s: float
    clear_s: float
    loss_rate: float
    mean_burst: float
    #: empirical fraction of flows crossing the link during the episode
    #: that would see >= 1 corruption loss if left unprotected
    affected_fraction: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "link_id": self.link_id,
            "onset_s": self.onset_s,
            "clear_s": self.clear_s,
            "loss_rate": self.loss_rate,
            "mean_burst": self.mean_burst,
            "affected_fraction": self.affected_fraction,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CorruptionEpisode":
        return cls(**data)


def _sample_loss_rate(spec: FleetSpec, rng: np.random.Generator) -> float:
    if spec.loss_distribution == "pareto":
        # Bounded Pareto via inverse CDF: heavy tail, hard-capped like the
        # open-ended Table 1 top bucket.
        alpha, lo, hi = spec.pareto_alpha, spec.loss_floor, spec.loss_cap
        u = float(rng.random())
        h = 1.0 - (lo / hi) ** alpha
        return lo / (1.0 - u * h) ** (1.0 / alpha)
    rate = float(sample_loss_rates(rng, 1)[0])
    return min(max(rate, spec.loss_floor), spec.loss_cap)


def sample_profile(spec: FleetSpec, factory: RngFactory, link_id: int) -> LinkProfile:
    """The per-link profile, from the link's own named stream."""
    rng = factory.stream(f"fleet.link.{link_id}.profile")
    loss_rate = _sample_loss_rate(spec, rng)
    log_lo = math.log(spec.mean_burst_min)
    log_hi = math.log(spec.mean_burst_max)
    mean_burst = math.exp(float(rng.uniform(log_lo, log_hi)))
    return LinkProfile(link_id=link_id, loss_rate=loss_rate, mean_burst=mean_burst)


def link_episodes(
    spec: FleetSpec,
    factory: RngFactory,
    link_id: int,
    duration_s: float,
) -> List[CorruptionEpisode]:
    """Every corruption episode of one link within ``[0, duration_s)``.

    Onsets are exponential with the fleet MTTF (memoryless external
    damage, Appendix D); each episode lasts until a fast or slow repair
    crew clears it.  Episode loss rates jitter around the link's
    characteristic rate by a log-normal factor so repeat offenders stay
    repeat offenders (the heavy tail is a *per-link* property, as 007
    observed) without being bit-identical each time.
    """
    profile = sample_profile(spec, factory, link_id)
    rng = factory.stream(f"fleet.link.{link_id}.episodes")
    episodes: List[CorruptionEpisode] = []
    now = float(rng.exponential(spec.mttf_hours * HOURS))
    while now < duration_s:
        jitter = math.exp(float(rng.normal(0.0, 0.25)))
        loss_rate = min(max(profile.loss_rate * jitter, spec.loss_floor),
                        spec.loss_cap)
        repair_h = (
            spec.repair_fast_hours
            if float(rng.random()) < spec.repair_fast_fraction
            else spec.repair_slow_hours
        )
        clear = min(now + repair_h * HOURS, duration_s)
        episodes.append(CorruptionEpisode(
            link_id=link_id,
            onset_s=now,
            clear_s=clear,
            loss_rate=loss_rate,
            mean_burst=profile.mean_burst,
        ))
        now = clear + float(rng.exponential(spec.mttf_hours * HOURS))
    return episodes


def sample_affected_fraction(
    rng: np.random.Generator,
    loss_rate: float,
    mean_burst: float,
    flow_packets: int,
    n_flows: int = 128,
) -> float:
    """Fraction of ``n_flows`` sampled flows hit by >= 1 corruption loss.

    Runs the Gilbert–Elliott chain vectorized across flows (one uniform
    matrix, ``flow_packets`` state steps) — the empirical counterpart of
    the i.i.d. closed form ``1-(1-p)^packets``, which overcounts when
    losses cluster into bursts.
    """
    if loss_rate <= 0.0:
        return 0.0
    p_bg = 1.0 / mean_burst
    p_gb = loss_rate * p_bg / (1.0 - loss_rate)
    if p_gb >= 1.0:
        return 1.0
    draws = rng.random((flow_packets, n_flows))
    bad = np.zeros(n_flows, dtype=bool)
    hit = np.zeros(n_flows, dtype=bool)
    for step in range(flow_packets):
        bad = np.where(bad, draws[step] >= p_bg, draws[step] < p_gb)
        hit |= bad
    return float(hit.mean())


class FleetTopology(FabricTopology):
    """A :class:`FabricTopology` whose links carry corruption profiles."""

    def __init__(self, spec: FleetSpec, seed: int = 0) -> None:
        super().__init__(
            spec.n_pods, spec.tors_per_pod, spec.fabrics_per_pod,
            spec.spine_uplinks,
        )
        self.spec = spec
        self.seed = int(seed)
        self.factory = RngFactory(seed)
        self._profiles: Dict[int, LinkProfile] = {}

    def profile(self, link_id: int) -> LinkProfile:
        """The link's (lazily sampled, cached) corruption profile."""
        self._check_index("link", link_id, self.n_links)
        cached = self._profiles.get(link_id)
        if cached is None:
            cached = sample_profile(self.spec, self.factory, link_id)
            self._profiles[link_id] = cached
        return cached

    def episodes_for(self, link_id: int, duration_s: float) -> List[CorruptionEpisode]:
        self._check_index("link", link_id, self.n_links)
        return link_episodes(self.spec, self.factory, link_id, duration_s)
