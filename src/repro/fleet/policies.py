"""First-class activation policies: registry + trace-driven optimizer.

The arbitration strategies the :class:`~repro.fleet.controller.
FleetController` delegates to were born as two hard-wired classes
inside the controller module; this module promotes them to a proper
registry — :data:`POLICIES` plus :func:`register_policy` /
:func:`fleet_policy` — mirroring the repair-policy registry in
:mod:`repro.lifecycle.repair`, so subsystems (service config, CLI,
replay, the blame adapter) name policies by string and new strategies
plug in without touching the controller.

On top sits :class:`TraceDrivenOptimizer`: given a window of corruption
episodes (a lifecycle trace with repair applied, or a live stream), it
replays every candidate ``(policy, ControllerConfig)`` pair against its
own private topology copy and scores the SLO damage — lost
link-seconds, weighting an exposed link by its Mathis goodput collapse,
an LG-protected link by the Figure 8 speed tax, and a disabled link by
its full capacity.  The recomputation is **incremental per event**:
each onset/clear updates only the per-candidate cost *rate* by the
delta of new controller decisions (O(decisions changed), never O(links)),
so sweeping candidates over an O(100k)-link fleet stays interactive and
:meth:`TraceDrivenOptimizer.best` is readable between any two events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

__all__ = [
    "POLICIES", "FleetPolicy", "IncrementalDeploymentPolicy",
    "GreedyWorstLinkPolicy", "register_policy", "fleet_policy",
    "PolicyCandidate", "TraceDrivenOptimizer", "default_candidates",
    "optimize_policies",
]


class FleetPolicy:
    """Pluggable arbitration strategy; subclasses decide per onset."""

    name = "base"

    def on_onset(self, controller, link, episode, index) -> None:
        raise NotImplementedError

    def on_clear(self, controller, link, episode, index) -> None:
        """Hook after a repaired link returns (optimizer pass etc.)."""


#: registry of policy name -> class; extend via :func:`register_policy`
POLICIES: Dict[str, Type[FleetPolicy]] = {}


def register_policy(cls: Type[FleetPolicy]) -> Type[FleetPolicy]:
    """Class decorator: add a :class:`FleetPolicy` to the registry."""
    if not cls.name or cls.name == "base":
        raise ValueError("policy classes must set a distinct .name")
    POLICIES[cls.name] = cls
    return cls


def fleet_policy(name: str) -> FleetPolicy:
    """Instantiate a registered policy by name; ValueError on unknown."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown fleet policy {name!r}; "
            f"known: {', '.join(sorted(POLICIES))}") from None
    return cls()


@register_policy
class IncrementalDeploymentPolicy(FleetPolicy):
    """The paper's deployment policy (§6): disable-first, LG when blocked.

    CorrOpt semantics with LinkGuardian as the relief valve: a corrupting
    link is disabled for repair whenever the capacity constraint allows;
    when it does not, LinkGuardian keeps the link carrying traffic.  On
    every repair completion an optimizer pass retries the still-exposed
    links, worst first.
    """

    name = "incremental"

    def on_onset(self, controller, link, episode, index) -> None:
        if controller.try_disable(link, episode, index):
            return
        if controller.try_activate(link, episode, index):
            return
        controller.mark_blocked(link, episode, index)

    def on_clear(self, controller, link, episode, index) -> None:
        now_s = episode.clear_s
        for other_index, other in controller.exposed_worst_first():
            other_link = controller.topology.link(other.link_id)
            if controller.try_disable(other_link, other, other_index, now_s):
                continue
            controller.try_activate(other_link, other, other_index, now_s)


@register_policy
class GreedyWorstLinkPolicy(FleetPolicy):
    """Baseline: spend the LG budget on the worst links, preempting.

    Activation-first — corruption is masked rather than routed around —
    and when the budget is full the mildest active link is preempted if
    the newcomer is strictly worse.  Links that miss the budget fall back
    to CorrOpt disable, then to exposed.
    """

    name = "greedy-worst"

    def on_onset(self, controller, link, episode, index) -> None:
        if controller.try_activate(link, episode, index):
            return
        if controller.can_preempt_for(episode):
            controller.preempt_mildest(episode.onset_s)
            if controller.try_activate(link, episode, index):
                return
        if controller.try_disable(link, episode, index):
            return
        controller.mark_blocked(link, episode, index)

    def on_clear(self, controller, link, episode, index) -> None:
        now_s = episode.clear_s
        for other_index, other in controller.exposed_worst_first():
            other_link = controller.topology.link(other.link_id)
            if controller.try_activate(other_link, other, other_index, now_s):
                continue
            controller.try_disable(other_link, other, other_index, now_s)


# ---------------------------------------------------------------------------
# Trace-driven policy optimization
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PolicyCandidate:
    """One (policy, controller-config) point the optimizer scores."""

    policy: str
    overrides: Tuple[Tuple[str, Any], ...] = ()

    @property
    def label(self) -> str:
        if not self.overrides:
            return self.policy
        knobs = ",".join(f"{key}={value}" for key, value in self.overrides)
        return f"{self.policy}({knobs})"

    def config(self, base) -> Any:
        if not self.overrides:
            return base
        from dataclasses import replace
        return replace(base, **dict(self.overrides))


class _CandidateState:
    """One candidate's controller, its private fleet, and its cost."""

    __slots__ = ("candidate", "controller", "topology", "cost_rate",
                 "weights", "open_index", "cursor", "cost", "last_s")

    def __init__(self, candidate, controller, topology) -> None:
        self.candidate = candidate
        self.controller = controller
        self.topology = topology
        self.cost_rate = 0.0          # lost link-capacity per second, now
        self.weights: Dict[int, float] = {}   # link_id -> current weight
        self.open_index: Dict[int, int] = {}  # link_id -> episode index
        self.cursor = 0               # consumed controller decisions
        self.cost = 0.0               # accumulated lost link-seconds
        self.last_s = 0.0


class TraceDrivenOptimizer:
    """Score policy/config candidates over one episode stream.

    Feed it a merged episode timeline (:meth:`run`), or stream events
    one at a time (:meth:`feed_onset` / :meth:`feed_clear`) and read
    :meth:`best` whenever a verdict is needed — per-event work is
    proportional to the decisions the event caused, not to fleet size.
    """

    def __init__(self, fleet, base_config=None, seed: int = 0,
                 candidates: Optional[Sequence[PolicyCandidate]] = None,
                 obs=None) -> None:
        from .controller import ControllerConfig, FleetController
        from .topology import FleetTopology

        self.fleet = fleet
        self.base_config = (base_config if base_config is not None
                            else ControllerConfig())
        if candidates is None:
            candidates = default_candidates()
        if not candidates:
            raise ValueError("need at least one candidate")
        self._states: List[_CandidateState] = []
        for candidate in candidates:
            config = candidate.config(self.base_config)
            topology = FleetTopology(fleet, seed=seed)
            controller = FleetController(
                topology, config, fleet_policy(candidate.policy))
            self._states.append(
                _CandidateState(candidate, controller, topology))
        self.events_seen = 0
        self._gauge = None
        if obs is not None:
            obs.registry.register_provider(
                "blame.optimizer", self._obs_snapshot)

    def _obs_snapshot(self) -> Dict[str, Any]:
        leader = self.best()
        return {
            "events": self.events_seen,
            "candidates": len(self._states),
            "best_label": leader["label"],
            "best_cost": leader["cost_link_seconds"],
        }

    # -- incremental cost accounting ------------------------------------------

    @staticmethod
    def _weight(action: str, loss_rate: float) -> float:
        """Lost capacity (0..1 of one link) while the state persists."""
        from ..corropt.simulation import lg_effective_speed_fraction
        from .campaign import unprotected_goodput_fraction

        if action == "disable":
            return 1.0
        if action == "activate":
            return 1.0 - lg_effective_speed_fraction(loss_rate)
        # blocked / preempted-back-to-exposed: flows eat the loss
        return 1.0 - unprotected_goodput_fraction(loss_rate)

    def _advance(self, state: _CandidateState, now_s: float) -> None:
        if now_s > state.last_s:
            state.cost += state.cost_rate * (now_s - state.last_s)
            state.last_s = now_s

    def _absorb_decisions(self, state: _CandidateState) -> None:
        """Fold fresh controller decisions into the cost rate — the
        incremental step: O(new decisions), independent of fleet size."""
        log = state.controller.outcome.decisions
        while state.cursor < len(log):
            decision = log[state.cursor]
            state.cursor += 1
            if decision.action == "clear":
                continue
            old = state.weights.pop(decision.link_id, 0.0)
            new = self._weight(decision.action, decision.loss_rate)
            state.weights[decision.link_id] = new
            state.cost_rate += new - old

    def feed_onset(self, episode) -> None:
        """One live onset, fanned out to every candidate."""
        self.events_seen += 1
        for state in self._states:
            self._advance(state, episode.onset_s)
            index = state.controller.stream_onset(episode)
            state.open_index[episode.link_id] = index
            self._absorb_decisions(state)

    def feed_clear(self, link_id: int, clear_s: float) -> None:
        """The matching clear; unknown link ids are ignored."""
        self.events_seen += 1
        for state in self._states:
            index = state.open_index.pop(link_id, None)
            if index is None:
                continue
            self._advance(state, clear_s)
            state.cost_rate -= state.weights.pop(link_id, 0.0)
            state.controller.stream_clear(index, clear_s)
            # The policy's on_clear pass may have re-homed exposed links.
            self._absorb_decisions(state)

    # -- batch convenience ------------------------------------------------------

    def run(self, episodes: Sequence[Any]) -> List[Dict[str, Any]]:
        """Replay a merged timeline; returns :meth:`results`.

        Event order matches :meth:`FleetController.run` — ``(time,
        kind)`` with clears first on ties, so a repaired link frees
        budget before a same-instant onset claims it.
        """
        events: List[Tuple[float, int, int, int]] = []
        for index, episode in enumerate(episodes):
            events.append((episode.onset_s, 1, episode.link_id, index))
            if math.isfinite(episode.clear_s):
                events.append((episode.clear_s, 0, episode.link_id, index))
        events.sort()
        for time_s, kind, link_id, index in events:
            if kind == 1:
                self.feed_onset(episodes[index])
            else:
                self.feed_clear(link_id, time_s)
        return self.results()

    # -- verdicts ---------------------------------------------------------------

    def results(self) -> List[Dict[str, Any]]:
        """Every candidate's score so far, cheapest damage first."""
        rows = []
        for state in self._states:
            counts = state.controller.outcome.counts()
            rows.append({
                "label": state.candidate.label,
                "policy": state.candidate.policy,
                "overrides": dict(state.candidate.overrides),
                "cost_link_seconds": state.cost,
                "cost_rate_now": state.cost_rate,
                **counts,
            })
        rows.sort(key=lambda row: (row["cost_link_seconds"], row["label"]))
        return rows

    def best(self) -> Dict[str, Any]:
        return self.results()[0]


def default_candidates(
        budgets: Sequence[int] = (8, 64)) -> List[PolicyCandidate]:
    """The stock sweep: every registered policy x activation budgets."""
    out = []
    for name in sorted(POLICIES):
        for budget in budgets:
            out.append(PolicyCandidate(
                name, (("activation_budget", int(budget)),)))
    return out


def optimize_policies(fleet, episodes, base_config=None, seed: int = 0,
                      candidates: Optional[Sequence[PolicyCandidate]] = None,
                      obs=None) -> List[Dict[str, Any]]:
    """One-shot: replay ``episodes`` over candidates, ranked results."""
    optimizer = TraceDrivenOptimizer(
        fleet, base_config=base_config, seed=seed, candidates=candidates,
        obs=obs)
    return optimizer.run(episodes)
