"""Fleet-wide corruptd: capacity-aware arbitration over corrupting links.

The single-link :class:`~repro.monitor.corruptd.Corruptd` answers one
question — "is this link corrupting?".  At fleet scale the paper's §6
deployment story needs a second, global decision per corrupting link:

* **disable** it for repair (CorrOpt) when the fast checker says the
  pod keeps ``capacity_constraint`` of its valley-free ToR paths, or
* **activate LinkGuardian** and keep carrying traffic at the Figure 8
  effective speed, bounded by a fleet-wide activation budget (dataplane
  resources are finite) and a per-pod capacity floor, or
* leave it **exposed** (blocked) when neither is possible.

The arbitration loop replays the fleet's merged corruption-episode
timeline in deterministic ``(time, link_id)`` order, delegating each
onset to a pluggable :class:`FleetPolicy` from the
:mod:`repro.fleet.policies` registry.  Two policies ship: the paper's
incremental-deployment policy (disable-first, LG as the relief valve
when capacity is tight) and a greedy-worst-link baseline (LG-first on
the highest loss rates, preempting milder links when the budget is
full).  Every decision is counted in the metrics registry and emitted on
the event trace under the ``fleet`` category.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Tuple

from ..corropt.simulation import (
    lg_effective_loss_rate, lg_effective_speed_fraction,
)
from ..fabric.topology import FabricLink
from ..obs.trace import NULL_TRACER
from .policies import (
    POLICIES, FleetPolicy, GreedyWorstLinkPolicy,
    IncrementalDeploymentPolicy,
)
from .topology import CorruptionEpisode, FleetTopology

__all__ = [
    "ControllerConfig", "Decision", "EpisodeSegment", "ControllerOutcome",
    "FleetPolicy", "IncrementalDeploymentPolicy", "GreedyWorstLinkPolicy",
    "FleetController", "POLICIES",
]

#: states a corrupting link can sit in until its episode clears
EXPOSED = "exposed"     # corrupting, unprotected: flows eat the loss
PROTECTED = "lg"        # LinkGuardian active: loss masked, speed fraction paid
DISABLED = "down"       # taken out for repair: capacity lost, flows reroute


@dataclass(frozen=True)
class ControllerConfig:
    """Fleet-wide knobs of the arbitration loop."""

    #: CorrOpt fast-checker floor: min fraction of valley-free ToR paths
    capacity_constraint: float = 0.75
    #: per-pod capacity floor LG activation must preserve (activating at
    #: reduced effective speed still costs capacity)
    pod_capacity_floor: float = 0.5
    #: max concurrent LinkGuardian activations fleet-wide
    activation_budget: int = 64
    #: fraction of links whose endpoints are LG-capable (§6 incremental)
    lg_deployment_fraction: float = 1.0
    lg_target_loss: float = 1e-8

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ControllerConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ControllerConfig fields: {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class Decision:
    """One controller action, for the audit trail and the event trace."""

    time_s: float
    link_id: int
    action: str          # "disable" | "activate" | "blocked" | "preempt" | "clear"
    loss_rate: float


@dataclass
class EpisodeSegment:
    """A [start, end) slice of one episode spent in one state."""

    start_s: float
    end_s: float
    state: str           # EXPOSED | PROTECTED | DISABLED


@dataclass
class ControllerOutcome:
    """What the arbitration loop decided, episode by episode."""

    #: episode index (in the merged, sorted episode list) -> state slices
    segments: Dict[int, List[EpisodeSegment]] = field(default_factory=dict)
    decisions: List[Decision] = field(default_factory=list)
    activations: int = 0
    disables: int = 0
    blocked: int = 0
    preemptions: int = 0
    max_concurrent_lg: int = 0

    def counts(self) -> Dict[str, int]:
        return {
            "activations": self.activations,
            "disables": self.disables,
            "blocked": self.blocked,
            "preemptions": self.preemptions,
            "max_concurrent_lg": self.max_concurrent_lg,
        }


# FleetPolicy, IncrementalDeploymentPolicy, GreedyWorstLinkPolicy, and
# the POLICIES registry live in repro.fleet.policies; they are
# re-exported here (see the imports above) for backward compatibility.


class FleetController:
    """Replays a merged episode timeline and arbitrates each onset."""

    def __init__(
        self,
        topology: FleetTopology,
        config: ControllerConfig,
        policy: FleetPolicy,
        obs=None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.policy = policy
        self.outcome = ControllerOutcome()
        self._active: Dict[int, int] = {}    # link_id -> episode index (LG on)
        self._exposed: Dict[int, int] = {}   # link_id -> episode index
        self._lg_capable: Dict[int, bool] = {}
        self._episodes: List[CorruptionEpisode] = []
        self._tracer = obs.tracer if obs is not None else NULL_TRACER
        self._counters = None
        if obs is not None:
            prefix = f"fleet.controller.{policy.name}"
            self._counters = {
                action: obs.registry.counter(f"{prefix}.{action}")
                for action in ("activate", "disable", "blocked", "preempt")
            }
            self._lg_gauge = obs.registry.gauge(f"{prefix}.lg_active")

    # -- state transitions used by policies ------------------------------------

    def _record(self, time_s: float, link_id: int, action: str,
                loss_rate: float) -> None:
        self.outcome.decisions.append(Decision(time_s, link_id, action, loss_rate))
        if self._counters is not None and action in self._counters:
            self._counters[action].inc()
        if self._tracer.enabled:
            self._tracer.instant(int(time_s * 1e9), "fleet", action, {
                "link": link_id, "loss_rate": loss_rate,
            })

    def _open_segment(self, index: int, start_s: float, state: str) -> None:
        self.outcome.segments.setdefault(index, []).append(
            EpisodeSegment(start_s, self._episodes[index].clear_s, state))

    def _close_segment(self, index: int, end_s: float) -> None:
        self.outcome.segments[index][-1].end_s = end_s

    def _is_lg_capable(self, link_id: int) -> bool:
        fraction = self.config.lg_deployment_fraction
        if fraction >= 1.0:
            return True
        cached = self._lg_capable.get(link_id)
        if cached is None:
            # A deterministic per-link coin from the fleet's own seed stream.
            rng = self.topology.factory.stream(f"fleet.link.{link_id}.lg-capable")
            cached = float(rng.random()) < fraction
            self._lg_capable[link_id] = cached
        return cached

    def try_disable(self, link: FabricLink, episode: CorruptionEpisode,
                    index: int, time_s: Optional[float] = None) -> bool:
        if not self.topology.can_disable(link, self.config.capacity_constraint):
            return False
        time_s = episode.onset_s if time_s is None else time_s
        if link.link_id in self._exposed:
            del self._exposed[link.link_id]
            self._close_segment(index, time_s)
        link.up = False
        link.lg_enabled = False
        link.speed_fraction = 1.0
        self.outcome.disables += 1
        self._record(time_s, link.link_id, "disable", episode.loss_rate)
        self._open_segment(index, time_s, DISABLED)
        return True

    def try_activate(self, link: FabricLink, episode: CorruptionEpisode,
                     index: int, time_s: Optional[float] = None) -> bool:
        if len(self._active) >= self.config.activation_budget:
            return False
        if not self._is_lg_capable(link.link_id):
            return False
        speed = lg_effective_speed_fraction(episode.loss_rate)
        previous = link.speed_fraction
        link.lg_enabled = True
        link.speed_fraction = speed
        if (self.topology.pod_capacity_fraction(link.pod)
                < self.config.pod_capacity_floor):
            link.lg_enabled = False
            link.speed_fraction = previous
            return False
        time_s = episode.onset_s if time_s is None else time_s
        if link.link_id in self._exposed:
            del self._exposed[link.link_id]
            self._close_segment(index, time_s)
        self._active[link.link_id] = index
        self.outcome.activations += 1
        self.outcome.max_concurrent_lg = max(
            self.outcome.max_concurrent_lg, len(self._active))
        if self._counters is not None:
            self._lg_gauge.set(len(self._active))
        self._record(time_s, link.link_id, "activate", episode.loss_rate)
        self._open_segment(index, time_s, PROTECTED)
        return True

    def mark_blocked(self, link: FabricLink, episode: CorruptionEpisode,
                     index: int) -> None:
        self._exposed[link.link_id] = index
        self.outcome.blocked += 1
        self._record(episode.onset_s, link.link_id, "blocked", episode.loss_rate)
        self._open_segment(index, episode.onset_s, EXPOSED)

    def can_preempt_for(self, episode: CorruptionEpisode) -> bool:
        mildest = self._mildest_active()
        return (mildest is not None
                and self._episodes[mildest[1]].loss_rate < episode.loss_rate)

    def preempt_mildest(self, time_s: float) -> None:
        mildest = self._mildest_active()
        if mildest is None:
            return
        link_id, index = mildest
        link = self.topology.link(link_id)
        del self._active[link_id]
        link.lg_enabled = False
        link.speed_fraction = 1.0
        self._close_segment(index, time_s)
        self._exposed[link_id] = index
        self._open_segment(index, time_s, EXPOSED)
        self.outcome.preemptions += 1
        if self._counters is not None:
            self._lg_gauge.set(len(self._active))
        self._record(time_s, link_id, "preempt", self._episodes[index].loss_rate)

    def _mildest_active(self) -> Optional[Tuple[int, int]]:
        """(link_id, episode index) of the mildest LG-protected link."""
        if not self._active:
            return None
        return min(
            self._active.items(),
            key=lambda item: (self._episodes[item[1]].loss_rate, item[0]),
        )

    def exposed_worst_first(self) -> List[Tuple[int, CorruptionEpisode]]:
        """Still-exposed episodes, highest loss rate first (ties by link)."""
        ordered = sorted(
            self._exposed.items(),
            key=lambda item: (-self._episodes[item[1]].loss_rate, item[0]),
        )
        return [(index, self._episodes[index]) for _, index in ordered]

    # -- streaming arbitration (the always-on service) ---------------------------
    #
    # ``run`` below replays a complete, pre-generated timeline.  The
    # control-plane service instead discovers onsets and clears one at a
    # time from live telemetry, so episodes arrive with an unknown clear
    # time (+inf) that is filled in when the link recovers.  Both paths
    # share the same policy hooks and state transitions, so a streamed
    # sequence of onset/clear pairs reaches the same verdicts as a batch
    # replay of the equivalent timeline.

    def stream_onset(self, episode: CorruptionEpisode) -> int:
        """Arbitrate one live onset; returns its episode index.

        The episode's ``clear_s`` is typically ``inf`` — pass the index
        to :meth:`stream_clear` when telemetry shows the link healthy.
        """
        index = len(self._episodes)
        self._episodes.append(episode)
        link = self.topology.link(episode.link_id)
        link.corrupting = True
        link.loss_rate = episode.loss_rate
        self.policy.on_onset(self, link, episode, index)
        return index

    def stream_clear(self, index: int, clear_s: float) -> CorruptionEpisode:
        """Close a streamed episode at its observed clear time."""
        episode = replace(self._episodes[index], clear_s=clear_s)
        self._episodes[index] = episode
        link = self.topology.link(episode.link_id)
        self._clear(link, episode, index)
        self.policy.on_clear(self, link, episode, index)
        return episode

    @property
    def episodes(self) -> List[CorruptionEpisode]:
        """Episodes seen so far (streamed or replayed), index-aligned
        with ``outcome.segments``."""
        return self._episodes

    def lg_active_links(self) -> List[int]:
        """Links currently carrying traffic under LinkGuardian."""
        return sorted(self._active)

    def exposed_links(self) -> List[int]:
        """Links corrupting unprotected (blocked from both remedies)."""
        return sorted(self._exposed)

    # -- the arbitration loop ----------------------------------------------------

    def run(self, episodes: List[CorruptionEpisode]) -> ControllerOutcome:
        """Replay ``episodes`` (the fleet's merged timeline) to a verdict.

        The event order — onsets and clears interleaved by ``(time,
        link_id)``, clears first on ties so a repaired link frees budget
        before a same-instant onset claims it — is what makes the outcome
        independent of how episodes were sharded for generation.
        """
        self._episodes = episodes
        events: List[Tuple[float, int, int, int]] = []
        for index, episode in enumerate(episodes):
            events.append((episode.onset_s, 1, episode.link_id, index))
            events.append((episode.clear_s, 0, episode.link_id, index))
        events.sort()

        for time_s, kind, link_id, index in events:
            episode = episodes[index]
            link = self.topology.link(link_id)
            if kind == 1:
                link.corrupting = True
                link.loss_rate = episode.loss_rate
                self.policy.on_onset(self, link, episode, index)
            else:
                self._clear(link, episode, index)
                self.policy.on_clear(self, link, episode, index)
        return self.outcome

    def _clear(self, link: FabricLink, episode: CorruptionEpisode,
               index: int) -> None:
        link.up = True
        link.corrupting = False
        link.loss_rate = 0.0
        link.lg_enabled = False
        link.speed_fraction = 1.0
        self._active.pop(link.link_id, None)
        self._exposed.pop(link.link_id, None)
        if self._counters is not None:
            self._lg_gauge.set(len(self._active))
        self._close_segment(index, episode.clear_s)
        if self._tracer.enabled:
            self._tracer.instant(int(episode.clear_s * 1e9), "fleet", "clear", {
                "link": link.link_id,
            })

    def effective_loss(self, loss_rate: float) -> float:
        return lg_effective_loss_rate(loss_rate, self.config.lg_target_loss)
