"""Sharded fleet campaigns: generate → arbitrate → roll up to fleet SLOs.

A campaign answers the ROADMAP's production-scale question: across a
whole fleet of links under the heavy-tailed corruption distribution,
what fraction of flows does corruption touch, what does the fleet-wide
goodput look like, and how hard does the controller work?  The execution
scheme is built for scale and bit-reproducibility:

1. **Shard** — links are partitioned into contiguous id ranges; each
   shard is one :class:`~repro.runner.spec.ExperimentSpec` cell (kind
   ``fleet_shard``) executed through
   :class:`~repro.runner.sweep.SweepRunner`, so parallel execution,
   JSONL checkpoint/resume and canonical result order come from the
   existing runner layer.  Shard work — episode generation plus the
   vectorized Gilbert–Elliott flow sampling — only touches per-link
   named RNG streams, so shard boundaries can never change a single
   draw.
2. **Arbitrate** — the merged episode timeline (sorted by ``(onset,
   link_id)``) is replayed serially through the
   :class:`~repro.fleet.controller.FleetController`; the control plane
   is cheap and global, so it does not shard.
3. **Roll up** — controller segments turn into fleet SLOs with
   closed-form per-segment arithmetic (affected-flow fraction, goodput
   fraction, p99 FCT inflation, decision counts per day).

The same seed therefore yields a byte-identical
:meth:`FleetCampaignResult.canonical_json` for any ``(n_shards,
workers)`` combination.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Tuple

from ..core.rng import RngFactory
from ..corropt.simulation import lg_effective_speed_fraction
from ..runner.spec import ExperimentSpec, SweepSpec
from ..runner.sweep import SweepRunner
from .controller import (
    DISABLED, EXPOSED, PROTECTED, POLICIES, ControllerConfig, FleetController,
)
from .topology import (
    DAY_S, CorruptionEpisode, FleetSpec, FleetTopology, link_episodes,
    sample_affected_fraction,
)

__all__ = [
    "FleetCampaignSpec", "FleetCampaignResult", "HYBRID_EMPIRICAL_THRESHOLD",
    "shard_bounds", "run_shard", "shard_timeline", "run_fleet_campaign",
    "resimulate_flagged", "unprotected_goodput_fraction",
]

#: FCT inflation factor for a flow that loses >= 1 packet with LinkGuardian
#: active: recovery is sub-RTT (Figure 19: 2-6 us on a ~20 us RTT).
LG_FCT_INFLATION = 1.05
#: ... and without protection: timeout-dominated recovery for short flows
#: (paper Figure 10: p99 single-packet FCT goes from ~25 us to RTO-scale).
EXPOSED_FCT_INFLATION = 10.0
#: packets in flight per RTT on a healthy link, for the Mathis-style
#: unprotected goodput model below (100G, ~20 us RTT, 1460 B MSS ~ 171;
#: rounded down to stay conservative).
BDP_PACKETS = 128
#: hybrid-backend cutover: episodes whose *analytic* affected fraction
#: reaches this are sampled empirically instead (the Gilbert–Elliott
#: closed form is weakest exactly where bursts touch most flows).  A
#: module constant, not a spec field, so campaign canonical output stays
#: byte-compatible across backends.
HYBRID_EMPIRICAL_THRESHOLD = 0.5


def unprotected_goodput_fraction(loss_rate: float) -> float:
    """Goodput of a corrupting, unprotected link as a fraction of line rate.

    Mathis et al.: TCP throughput ~ (MSS/RTT) * 1.22/sqrt(p); normalized
    by the link's bandwidth-delay product in packets and clamped to 1.
    Matches the Table 3 shape: negligible damage at 1e-5, collapse at 1e-3.
    """
    if loss_rate <= 0.0:
        return 1.0
    return min(1.0, 1.22 / (math.sqrt(loss_rate) * BDP_PACKETS))


@dataclass(frozen=True)
class FleetCampaignSpec:
    """Everything one fleet campaign needs, serializable for shard cells."""

    fleet: FleetSpec = field(default_factory=FleetSpec)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    policy: str = "incremental"
    duration_days: float = 30.0
    seed: int = 1
    n_shards: int = 1
    #: offered load per link, for the affected-flow and FCT rollups
    flows_per_link_per_s: float = 100.0
    flow_packets: int = 100
    #: flows sampled per episode for the empirical Gilbert-Elliott
    #: affected-fraction measurement
    sample_flows: int = 128
    #: "packet" samples every episode's affected fraction empirically;
    #: "fastpath" computes it analytically (Gilbert-Elliott closed form)
    #: and re-simulates only the flagged worst episodes; "hybrid" is the
    #: middle tier — analytic for mild episodes, empirical sampling for
    #: any episode whose analytic affected fraction reaches
    #: :data:`HYBRID_EMPIRICAL_THRESHOLD` (decided per episode, so the
    #: outcome is independent of sharding), plus the flagged resim pass.
    backend: str = "packet"
    #: fraction of episodes (the worst, by analytic affected fraction)
    #: the fastpath backend re-simulates with the packet sampler.
    resim_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; known: {sorted(POLICIES)}")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.n_shards > self.fleet.n_links:
            raise ValueError(
                f"n_shards={self.n_shards} exceeds fleet links "
                f"({self.fleet.n_links})")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.backend not in ("packet", "fastpath", "hybrid"):
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"known: packet, fastpath, hybrid")
        if not 0.0 <= self.resim_fraction <= 1.0:
            raise ValueError("resim_fraction must be in [0, 1]")

    @property
    def duration_s(self) -> float:
        return self.duration_days * DAY_S

    def to_dict(self) -> Dict[str, Any]:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["fleet"] = self.fleet.to_dict()
        out["controller"] = self.controller.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetCampaignSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FleetCampaignSpec fields: {sorted(unknown)}")
        data = dict(data)
        data["fleet"] = FleetSpec.from_dict(data.get("fleet", {}))
        data["controller"] = ControllerConfig.from_dict(
            data.get("controller", {}))
        return cls(**data)


def shard_bounds(n_links: int, n_shards: int, shard: int) -> Tuple[int, int]:
    """Contiguous ``[lo, hi)`` link-id range of one shard (balanced)."""
    if not 0 <= shard < n_shards:
        raise ValueError(f"shard {shard} out of range [0, {n_shards})")
    base, extra = divmod(n_links, n_shards)
    lo = shard * base + min(shard, extra)
    hi = lo + base + (1 if shard < extra else 0)
    return lo, hi


def run_shard(campaign: FleetCampaignSpec, shard: int) -> List[CorruptionEpisode]:
    """Generate one shard's episodes, with per-episode affected fractions.

    All randomness is drawn from streams named by ``link_id`` (and the
    episode's index on its link), so the output is a pure function of
    ``(campaign.seed, link_id)`` — re-sharding cannot move any draw.

    The packet backend samples every episode's affected fraction
    empirically; the fastpath backend uses the Gilbert–Elliott closed
    form (:func:`repro.fastpath.model.ge_affected_fraction`) and leaves
    the empirical sampling to the flagged-worst re-simulation pass in
    :func:`run_fleet_campaign`.  The hybrid backend splits per episode:
    the closed form where it is trustworthy, the empirical sampler (same
    named stream a packet shard would use) once the analytic fraction
    reaches :data:`HYBRID_EMPIRICAL_THRESHOLD` — the regime where the
    closed form's burst approximation is weakest.
    """
    factory = RngFactory(campaign.seed)
    lo, hi = shard_bounds(campaign.fleet.n_links, campaign.n_shards, shard)
    analytic = campaign.backend in ("fastpath", "hybrid")
    if analytic:
        from ..fastpath.model import ge_affected_fraction

    episodes: List[CorruptionEpisode] = []
    for link_id in range(lo, hi):
        for ep_index, episode in enumerate(
                link_episodes(campaign.fleet, factory, link_id,
                              campaign.duration_s)):
            if analytic:
                affected = float(ge_affected_fraction(
                    episode.loss_rate, episode.mean_burst,
                    campaign.flow_packets))
                if (campaign.backend == "hybrid"
                        and affected >= HYBRID_EMPIRICAL_THRESHOLD):
                    flows_rng = factory.stream(
                        f"fleet.link.{link_id}.flows.{ep_index}")
                    affected = sample_affected_fraction(
                        flows_rng, episode.loss_rate, episode.mean_burst,
                        campaign.flow_packets, campaign.sample_flows,
                    )
            else:
                flows_rng = factory.stream(
                    f"fleet.link.{link_id}.flows.{ep_index}")
                affected = sample_affected_fraction(
                    flows_rng, episode.loss_rate, episode.mean_burst,
                    campaign.flow_packets, campaign.sample_flows,
                )
            episodes.append(CorruptionEpisode(
                link_id=episode.link_id,
                onset_s=episode.onset_s,
                clear_s=episode.clear_s,
                loss_rate=episode.loss_rate,
                mean_burst=episode.mean_burst,
                affected_fraction=affected,
            ))
    return episodes


def shard_timeline(
    campaign: FleetCampaignSpec,
    episodes: List[CorruptionEpisode],
) -> Dict[str, list]:
    """Per-day longitudinal health series for one shard's episodes.

    Three columns, one entry per campaign day: episode onsets, corrupting
    link-seconds (episode time overlapping the day), and the
    time-weighted mean loss rate while corrupting.  Deterministic given
    the episode list, but attached to the shard cell's ``artifacts`` (not
    ``series``) because its shape depends on how links were sharded.
    """
    n_days = max(1, math.ceil(campaign.duration_days))
    onsets = [0] * n_days
    active_s = [0.0] * n_days
    loss_weight = [0.0] * n_days
    for episode in episodes:
        bucket = min(int(episode.onset_s / DAY_S), n_days - 1)
        onsets[bucket] += 1
        end = min(episode.clear_s, campaign.duration_s)
        first = min(int(episode.onset_s / DAY_S), n_days - 1)
        last = min(int(end / DAY_S), n_days - 1)
        for day in range(first, last + 1):
            span = min(end, (day + 1) * DAY_S) - max(episode.onset_s, day * DAY_S)
            if span > 0:
                active_s[day] += span
                loss_weight[day] += span * episode.loss_rate
    return {
        "interval_s": DAY_S,
        "day": list(range(n_days)),
        "episode_onsets": onsets,
        "corrupting_link_s": [round(s, 6) for s in active_s],
        "mean_loss_rate": [
            (loss_weight[d] / active_s[d]) if active_s[d] > 0 else 0.0
            for d in range(n_days)
        ],
    }


def shard_sweep(campaign: FleetCampaignSpec) -> SweepSpec:
    """The campaign's shards as one runner sweep (kind ``fleet_shard``)."""
    base = ExperimentSpec(
        kind="fleet_shard",
        scenario=campaign.policy,
        n_trials=1,
        seed=campaign.seed,
        params={"campaign": campaign.to_dict()},
    )
    return SweepSpec(
        name=f"fleet-{campaign.policy}-{campaign.fleet.n_links}links",
        base=base,
        axes={"params.shard": list(range(campaign.n_shards))},
    )


@dataclass
class FleetCampaignResult:
    """Fleet SLOs plus the controller's audit counters and time series."""

    spec: Dict[str, Any]
    slos: Dict[str, float]
    counts: Dict[str, int]
    series: Dict[str, list]
    wall_s: float = 0.0

    def summary(self) -> Dict[str, Any]:
        return {**self.slos, **self.counts}

    def canonical_json(self) -> str:
        """Deterministic serialization: same seed => byte-identical,
        independent of sharding/workers.  ``n_shards`` is an execution
        detail (like worker count and wall clock), so it is excluded —
        a 4-shard parallel run serializes identically to a serial run."""
        spec = dict(self.spec)
        spec.pop("n_shards", None)
        data = {
            "spec": spec,
            "slos": self.slos,
            "counts": self.counts,
            "series": self.series,
        }
        return json.dumps(data, sort_keys=True, separators=(",", ":"))


def resimulate_flagged(
    campaign: FleetCampaignSpec,
    episodes: List[CorruptionEpisode],
) -> Tuple[List[CorruptionEpisode], int]:
    """Replace the worst analytic episodes with packet-sampled fractions.

    The two-tier contract: flag the ``resim_fraction`` of episodes with
    the highest analytic affected fraction (loss rate breaking ties) and
    re-sample each with the **same named RNG stream** a packet-backend
    shard would have used (``fleet.link.<id>.flows.<ep_index>``) — the
    flagged values are therefore byte-identical to a full packet run.
    Flagging ranks the merged fleet-wide list, never per shard, so the
    outcome is independent of ``n_shards``.
    """
    if not episodes or campaign.resim_fraction <= 0.0:
        return episodes, 0
    n_flagged = min(len(episodes),
                    max(1, math.ceil(campaign.resim_fraction * len(episodes))))
    ranked = sorted(
        range(len(episodes)),
        key=lambda i: (-episodes[i].affected_fraction,
                       -episodes[i].loss_rate,
                       episodes[i].link_id, episodes[i].onset_s))
    flagged = ranked[:n_flagged]

    # Reconstruct each episode's on-link index (link_episodes generates
    # per link in onset order) to name the exact packet RNG stream.
    per_link: Dict[int, List[int]] = {}
    for index, episode in enumerate(episodes):
        per_link.setdefault(episode.link_id, []).append(index)
    ep_index: Dict[int, int] = {}
    for indices in per_link.values():
        indices.sort(key=lambda i: episodes[i].onset_s)
        for position, index in enumerate(indices):
            ep_index[index] = position

    factory = RngFactory(campaign.seed)
    episodes = list(episodes)
    for index in flagged:
        episode = episodes[index]
        flows_rng = factory.stream(
            f"fleet.link.{episode.link_id}.flows.{ep_index[index]}")
        episodes[index] = replace(episode, affected_fraction=(
            sample_affected_fraction(
                flows_rng, episode.loss_rate, episode.mean_burst,
                campaign.flow_packets, campaign.sample_flows)))
    return episodes, n_flagged


def _analytic_affected(loss_rate: float, flow_packets: int) -> float:
    """P(flow of n packets loses >= 1) under i.i.d. loss — used for the
    LinkGuardian-protected state, where retransmission breaks bursts and
    the residual effective loss really is independent."""
    if loss_rate <= 0.0:
        return 0.0
    return -math.expm1(flow_packets * math.log1p(-min(loss_rate, 1.0 - 1e-15)))


def run_fleet_campaign(
    campaign: FleetCampaignSpec,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    obs=None,
    progress=None,
) -> FleetCampaignResult:
    """Run the full campaign: sharded generation, arbitration, rollup."""
    started = time.perf_counter()
    runner = SweepRunner(shard_sweep(campaign), workers=workers,
                         checkpoint=checkpoint)
    shard_results = runner.run(progress=progress)
    episodes = [
        CorruptionEpisode.from_dict(raw)
        for result in shard_results
        for raw in result.series["episodes"]
    ]
    episodes.sort(key=lambda e: (e.onset_s, e.link_id))

    n_flagged = 0
    if campaign.backend in ("fastpath", "hybrid"):
        # For hybrid, episodes above the empirical threshold were already
        # sampled with these exact streams in run_shard; re-sampling a
        # flagged one reproduces the same value, so the pass only adds
        # coverage below the threshold.
        episodes, n_flagged = resimulate_flagged(campaign, episodes)

    topology = FleetTopology(campaign.fleet, campaign.seed)
    controller = FleetController(
        topology, campaign.controller, POLICIES[campaign.policy](), obs=obs)
    outcome = controller.run(episodes)

    # -- rollup: segments -> fleet SLOs ---------------------------------------
    duration_s = campaign.duration_s
    n_links = campaign.fleet.n_links
    flow_rate = campaign.flows_per_link_per_s
    total_flows = n_links * flow_rate * duration_s
    link_seconds = n_links * duration_s

    affected_exposed = 0.0
    affected_lg = 0.0
    goodput_delta = 0.0     # lost link-seconds vs an all-healthy fleet
    exposed_s = 0.0
    protected_s = 0.0
    disabled_s = 0.0
    n_days = max(1, math.ceil(campaign.duration_days))
    decisions_per_day = {
        action: [0] * n_days
        for action in ("activate", "disable", "blocked", "preempt")
    }

    for index, segments in sorted(outcome.segments.items()):
        episode = episodes[index]
        for segment in segments:
            span = segment.end_s - segment.start_s
            if span <= 0:
                continue
            flows = flow_rate * span
            if segment.state == EXPOSED:
                exposed_s += span
                affected_exposed += flows * episode.affected_fraction
                goodput_delta += span * (
                    1.0 - unprotected_goodput_fraction(episode.loss_rate))
            elif segment.state == PROTECTED:
                protected_s += span
                residual = controller.effective_loss(episode.loss_rate)
                affected_lg += flows * _analytic_affected(
                    residual, campaign.flow_packets)
                goodput_delta += span * (
                    1.0 - lg_effective_speed_fraction(episode.loss_rate))
            elif segment.state == DISABLED:
                disabled_s += span
                goodput_delta += span  # the link contributes nothing

    for decision in outcome.decisions:
        bucket = min(int(decision.time_s / DAY_S), n_days - 1)
        if decision.action in decisions_per_day:
            decisions_per_day[decision.action][bucket] += 1

    affected_flows = affected_exposed + affected_lg
    # p99 FCT inflation from the three-level mixture (1.0 for unaffected).
    levels = sorted([
        (1.0, total_flows - affected_flows),
        (LG_FCT_INFLATION, affected_lg),
        (EXPOSED_FCT_INFLATION, affected_exposed),
    ])
    threshold = 0.99 * total_flows
    cumulative = 0.0
    p99_inflation = levels[-1][0]
    for level, weight in levels:
        cumulative += weight
        if cumulative >= threshold:
            p99_inflation = level
            break

    slos = {
        "affected_flow_fraction": affected_flows / total_flows,
        "fleet_goodput_fraction": 1.0 - goodput_delta / link_seconds,
        "p99_fct_inflation": p99_inflation,
        "exposed_link_s": exposed_s,
        "protected_link_s": protected_s,
        "disabled_link_s": disabled_s,
        "n_episodes": float(len(episodes)),
    }
    counts = outcome.counts()
    result = FleetCampaignResult(
        spec=campaign.to_dict(),
        slos=slos,
        counts=counts,
        series={
            f"{action}_per_day": buckets
            for action, buckets in sorted(decisions_per_day.items())
        },
        wall_s=time.perf_counter() - started,
    )
    if obs is not None:
        obs.registry.register_provider(
            f"fleet.rollup.{campaign.policy}",
            lambda: {**result.slos, **result.counts},
        )
        # Campaign bookkeeping: one summary per campaign through the
        # registry (cells, backend mix, flagged-for-resim count) so the
        # CLI and exporters read the same source of truth.
        registry = obs.registry
        registry.counter("fleet.campaign.runs").inc()
        registry.counter("fleet.campaign.cells").inc(campaign.n_shards)
        registry.counter(
            f"fleet.campaign.cells.{campaign.backend}").inc(campaign.n_shards)
        registry.counter("fleet.campaign.episodes").inc(len(episodes))
        registry.counter("fleet.campaign.flagged_resim").inc(n_flagged)
        summary = {
            "cells": campaign.n_shards,
            "backend": campaign.backend,
            "backend_mix": {campaign.backend: campaign.n_shards},
            "flagged_resim": n_flagged,
            "episodes": len(episodes),
            "links": campaign.fleet.n_links,
            "duration_days": campaign.duration_days,
            "policy": campaign.policy,
            "wall_s": round(result.wall_s, 4),
        }
        registry.register_provider(
            "fleet.campaign.summary", lambda: summary)
    return result
