"""Packet-level TCP model: SACK scoreboard, RACK/TLP, RTO, ECN.

This is the endpoint stack the paper's testbed runs (kernel DCTCP /
CUBIC / BBR with SACK and RACK-TLP enabled, RTOmin = 1 ms) reduced to
the mechanisms that determine flow completion times under corruption
loss:

* a **SACK scoreboard** with RFC 6675-style "3 SACKed segments above a
  hole" loss marking;
* **RACK** time-based marking with an adaptive reordering window (this
  is what lets short flows tolerate LinkGuardianNB's out-of-order
  retransmissions — or not, Figure 13);
* a **tail-loss probe** so the last segments of a flow can be recovered
  without a full RTO;
* an **RTO** with RFC 6298 estimation, a 1 ms floor and exponential
  backoff — the 99.9th-percentile FCT killer the paper eliminates;
* per-packet **ECN echo** feeding DCTCP's alpha.

Congestion control is pluggable (:mod:`repro.transport.congestion`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from ..core.engine import Event, Simulator
from ..packets.packet import EcnCodepoint, Packet, TcpHeader
from ..units import MS
from .congestion import BbrCC, CongestionControl
from .flow import FlowRecord

__all__ = ["TCP_HEADER_BYTES", "TcpSender", "TcpReceiver"]

#: Ethernet (14+4) + IPv4 (20) + TCP (20) headers per segment frame.
TCP_HEADER_BYTES = 58
#: default MSS giving 1518 B frames, as in the paper's testbed
DEFAULT_MSS = 1460


class _SegmentState:
    __slots__ = ("seq", "length", "last_tx_ns", "tx_count", "sacked", "lost")

    def __init__(self, seq: int, length: int) -> None:
        self.seq = seq
        self.length = length
        self.last_tx_ns = 0
        self.tx_count = 0
        self.sacked = False
        self.lost = False


class TcpSender:
    """One TCP flow's sender endpoint."""

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        dst: str,
        flow_id: int,
        size_bytes: int,
        cc: Optional[CongestionControl] = None,
        mss: int = DEFAULT_MSS,
        rto_min_ns: int = 1 * MS,
        rwnd_bytes: int = 1_000_000,
        on_complete: Optional[Callable[[FlowRecord], None]] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.dst = dst
        self.mss = mss
        self.cc = cc if cc is not None else CongestionControl(mss=mss)
        self.rto_min_ns = rto_min_ns
        #: receiver-window / socket-buffer cap on the effective window
        self.rwnd_bytes = rwnd_bytes
        self.on_complete = on_complete
        self.flow = FlowRecord(flow_id=flow_id, size_bytes=size_bytes)

        self.snd_una = 0
        self.snd_nxt = 0
        self.segments: Dict[int, _SegmentState] = {}
        self._seq_queue = deque()      # segment seqs in creation order
        self._sacked_bytes = 0
        self._lost_bytes = 0           # RFC 6675 pipe: lost bytes are not in flight
        self._recovery_point = -1      # snd_nxt when the last cut happened
        self._srtt: Optional[int] = None
        self._rttvar = 0
        self._min_rtt: Optional[int] = None
        self._reorder_wnd_ns = 0       # RACK window; adapts upward
        self._reorder_seen = False
        self._rto_event: Optional[Event] = None
        self._tlp_event: Optional[Event] = None
        self._rack_event: Optional[Event] = None
        self._backoff = 1
        self._pacing_next_ns = 0
        self._pacing_scheduled = False
        self._tlp_fired = False        # one probe per flight (RFC 8985)
        self._last_delivery_ns: Optional[int] = None  # BBR rate sampler
        self._done = False
        self._newest_sacked_tx: int = -1
        host.register_handler(flow_id, self._on_packet)

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        self.flow.start_ns = self.sim.now
        if self.flow.size_bytes <= 0:
            self._complete()
            return
        self._send_available()

    # -- sending --------------------------------------------------------------------

    def _in_flight(self) -> int:
        # RFC 6675 "pipe": SACKed bytes were delivered, lost bytes are
        # presumed gone — neither occupies the network.
        return (self.snd_nxt - self.snd_una) - self._sacked_bytes - self._lost_bytes

    def _mark_lost(self, segment: _SegmentState) -> None:
        if not segment.lost:
            segment.lost = True
            self._lost_bytes += segment.length

    def _send_available(self) -> None:
        if self._done:
            return
        pacing = self.cc.pacing_rate_bps(self.sim.now)
        window = min(self.cc.cwnd, self.rwnd_bytes)
        # Retransmissions of marked-lost segments take precedence over
        # new data (RFC 6675 NextSeg rule), bounded by cwnd via pipe.
        if self._lost_bytes:
            for seq in sorted(self.segments):
                segment = self.segments[seq]
                if segment.lost and self._in_flight() < window:
                    self._transmit(segment, is_retx=True)
        while self.snd_nxt < self.flow.size_bytes and self._in_flight() < window:
            if pacing is not None and self.sim.now < self._pacing_next_ns:
                self._schedule_pacing()
                return
            length = min(self.mss, self.flow.size_bytes - self.snd_nxt)
            segment = _SegmentState(self.snd_nxt, length)
            self.segments[self.snd_nxt] = segment
            self._seq_queue.append(self.snd_nxt)
            self._transmit(segment)
            self.snd_nxt += length
            if pacing is not None:
                self._pacing_next_ns = self.sim.now + (length + TCP_HEADER_BYTES) * 8 * 10**9 // pacing
        # Window-limited or out of data: the ACK clock re-triggers sending;
        # only a pacing-gated exit (above) schedules a timer retry.

    def _schedule_pacing(self) -> None:
        if self._pacing_scheduled or self._done:
            return
        delay = max(1, self._pacing_next_ns - self.sim.now)
        self._pacing_scheduled = True

        def fire():
            self._pacing_scheduled = False
            self._send_available()

        self.sim.schedule(delay, fire)

    def _transmit(self, segment: _SegmentState, is_retx: bool = False) -> None:
        segment.last_tx_ns = self.sim.now
        segment.tx_count += 1
        if segment.lost:
            segment.lost = False
            self._lost_bytes -= segment.length
        packet = Packet(
            size=segment.length + TCP_HEADER_BYTES,
            src=self.host.name,
            dst=self.dst,
            flow_id=self.flow.flow_id,
            ecn=EcnCodepoint.ECT,
            created_at=self.sim.now,
            tcp=TcpHeader(
                # `or 1`: a timestamp of 0 (flows starting at t=0) would
                # read as "no timestamp option" on the echo.
                seq=segment.seq, payload=segment.length, ts_val=self.sim.now or 1
            ),
        )
        self.flow.packets_sent += 1
        if is_retx:
            self.flow.retransmissions += 1
        self.host.send(packet)
        self._arm_rto()
        self._arm_tlp()

    # -- receiving ACKs -----------------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        if self._done or packet.tcp is None or not packet.tcp.is_ack:
            return
        header = packet.tcp
        now = self.sim.now
        if header.ts_ecr:
            self._rtt_sample(now - header.ts_ecr)

        acked = header.ack - self.snd_una
        newly_sacked = self._apply_sack(header.sack_blocks)
        if acked > 0:
            self._advance_una(header.ack)
            self._backoff = 1
            self._tlp_fired = False    # flight advanced: probing re-allowed
        if acked > 0 or newly_sacked > 0:
            rtt = self._srtt if self._srtt is not None else 0
            self.cc.on_ack(max(acked, 0), header.ece, rtt, now)
            if isinstance(self.cc, BbrCC):
                # Delivery-rate sample over the ACK inter-arrival time —
                # robust to self-inflicted queueing delay, unlike srtt.
                if self._last_delivery_ns is not None:
                    interval = now - self._last_delivery_ns
                    self.cc.deliver_sample(
                        max(acked, 0) + newly_sacked, interval, now
                    )
                self._last_delivery_ns = now
        self._detect_losses()
        if self.snd_una >= self.flow.size_bytes:
            self._complete()
            return
        self._arm_rto()
        if self.snd_una < self.snd_nxt:
            self._arm_tlp()  # RFC 8985: the probe timer restarts per ACK
        self._send_available()

    def _rtt_sample(self, rtt: int) -> None:
        if rtt <= 0:
            return
        if self._min_rtt is None or rtt < self._min_rtt:
            self._min_rtt = rtt
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt // 2
        else:
            err = abs(self._srtt - rtt)
            self._rttvar = (3 * self._rttvar + err) // 4
            self._srtt = (7 * self._srtt + rtt) // 8
        if not self._reorder_seen:
            self._reorder_wnd_ns = self._min_rtt // 4

    def _advance_una(self, ackno: int) -> None:
        # Segments are created in increasing-seq order, so the ack frontier
        # pops from the front of the insertion order.
        while self._seq_queue and self._seq_queue[0] + self.segments[self._seq_queue[0]].length <= ackno:
            seq = self._seq_queue.popleft()
            segment = self.segments.pop(seq)
            if segment.sacked:
                self._sacked_bytes -= segment.length
            if segment.lost:
                self._lost_bytes -= segment.length
        self.snd_una = max(self.snd_una, ackno)

    def _apply_sack(self, blocks: Tuple) -> int:
        newly = 0
        for start, end in blocks:
            for seq, segment in self.segments.items():
                if segment.sacked or seq < start or seq + segment.length > end:
                    continue
                if segment.lost and segment.tx_count == 1:
                    # A segment we marked lost was merely reordered.
                    self._reorder_seen = True
                    if self._srtt:
                        self._reorder_wnd_ns = max(self._reorder_wnd_ns, self._srtt)
                segment.sacked = True
                if segment.lost:
                    segment.lost = False
                    self._lost_bytes -= segment.length
                newly += segment.length
                self._sacked_bytes += segment.length
                self._newest_sacked_tx = max(self._newest_sacked_tx, segment.last_tx_ns)
        if newly:
            self.flow.saw_sack = True
            self.flow.sacked_bytes_total += newly
            self.flow.max_sack_burst = max(self.flow.max_sack_burst, self._sacked_bytes)
        return newly

    # -- loss detection (RFC 6675 + RACK) ---------------------------------------------------

    def _detect_losses(self) -> None:
        if self._sacked_bytes == 0:
            return  # no holes: nothing to mark (fast path for clean acks)
        lost_any = False
        earliest_deadline = None
        now = self.sim.now
        sorted_seqs = sorted(self.segments)
        # Suffix sums of SACKed bytes above each segment, O(n) once.
        sacked_above_map = {}
        running = 0
        for seq in reversed(sorted_seqs):
            sacked_above_map[seq] = running
            segment = self.segments[seq]
            if segment.sacked:
                running += segment.length
        for seq in sorted_seqs:
            segment = self.segments[seq]
            if segment.sacked or segment.lost:
                continue
            # Loss marking needs SACK evidence *newer than the segment's
            # last transmission* — otherwise a just-retransmitted segment
            # would be re-marked by every subsequent ACK (retx storm).
            rack_eligible = (
                self._newest_sacked_tx >= segment.last_tx_ns and self._sacked_bytes > 0
            )
            dupack_lost = rack_eligible and sacked_above_map[seq] >= 3 * self.mss
            if dupack_lost:
                self._mark_lost(segment)
                lost_any = True
            elif rack_eligible:
                deadline = segment.last_tx_ns + max(self._reorder_wnd_ns, 1)
                if now >= deadline:
                    self._mark_lost(segment)
                    lost_any = True
                elif earliest_deadline is None or deadline < earliest_deadline:
                    earliest_deadline = deadline
        if earliest_deadline is not None:
            self._arm_rack(earliest_deadline)
        if lost_any:
            self._enter_recovery()
            self._send_available()

    def _enter_recovery(self) -> None:
        if self.snd_una >= self._recovery_point:
            self._recovery_point = self.snd_nxt
            self.cc.on_loss_event(self.sim.now)
            self.flow.cwnd_reductions += 1
            self.flow.pending_bytes_at_reduction = max(
                self.flow.pending_bytes_at_reduction,
                self.flow.size_bytes - self.snd_nxt,
            )

    def _arm_rack(self, deadline: int) -> None:
        if self._rack_event is not None:
            self._rack_event.cancel()
        self._rack_event = self.sim.schedule_at(
            max(deadline, self.sim.now), self._on_rack_timer
        )

    def _on_rack_timer(self) -> None:
        self._rack_event = None
        if not self._done:
            self._detect_losses()

    # -- tail-loss probe ------------------------------------------------------------------------

    #: RFC 8985 §7.5.1 worst-case delayed-ACK allowance: with a single
    #: segment in flight the probe cannot distinguish "ACK delayed" from
    #: "segment lost", so the PTO is padded by WCDelAckT.  In practice
    #: this means a *tail* loss is recovered by the (smaller) RTO, not by
    #: TLP — exactly the pathology the paper measures (§4.5: "for very
    #: short flows RACK-TLP does not have a reliable estimate").
    WCDELACK_NS = 200 * MS

    def _outstanding_segments(self) -> int:
        return sum(1 for s in self.segments.values() if not s.sacked)

    def _tlp_timeout_ns(self) -> int:
        if self._srtt is None:
            return 2 * self.rto_min_ns
        pto = 2 * self._srtt + max(2 * self._rttvar, 1_000)
        if self._outstanding_segments() <= 1:
            pto += self.WCDELACK_NS
        return pto

    def _arm_tlp(self) -> None:
        if self._tlp_fired:
            return  # one probe per flight: the RTO takes over from here
        if self._tlp_event is not None:
            self._tlp_event.cancel()
        self._tlp_event = self.sim.schedule(self._tlp_timeout_ns(), self._on_tlp)

    def _on_tlp(self) -> None:
        self._tlp_event = None
        if self._done or self.snd_una >= self.snd_nxt:
            return
        # Probe with the highest outstanding unSACKed segment.
        candidates = [s for s, seg in self.segments.items() if not seg.sacked]
        if not candidates:
            return
        self._tlp_fired = True
        self._transmit(self.segments[max(candidates)], is_retx=True)

    # -- RTO ---------------------------------------------------------------------------------------

    def _rto_ns(self) -> int:
        if self._srtt is None:
            base = self.rto_min_ns
        else:
            base = max(self.rto_min_ns, self._srtt + 4 * self._rttvar)
        return base * self._backoff

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        if self.snd_una >= self.flow.size_bytes:
            self._rto_event = None
            return
        self._rto_event = self.sim.schedule(self._rto_ns(), self._on_rto)

    def _on_rto(self) -> None:
        self._rto_event = None
        if self._done or self.snd_una >= self.snd_nxt:
            return
        self.flow.timeouts += 1
        self._tlp_fired = False
        self._backoff = min(self._backoff * 2, 64)
        self.cc.on_rto(self.sim.now)
        # Go-back: everything outstanding is presumed lost; slow-start
        # retransmission resumes from the front of the scoreboard.
        for segment in self.segments.values():
            if not segment.sacked:
                self._mark_lost(segment)
        self._send_available()
        self._arm_rto()

    # -- snapshot / restore ----------------------------------------------------------------------------

    def snapshot(self):
        """Capture the flow's sender state for mid-run materialization.

        Timer events (RTO, TLP, RACK, pacing) are scheduled-event
        plumbing and are not captured; ``restore`` re-arms RTO and TLP
        from the restored estimator, and the RACK timer re-establishes
        itself on the next ACK's ``_detect_losses`` pass.
        """
        from ..core.state import TcpSenderState
        return TcpSenderState(
            flow={name: getattr(self.flow, name)
                  for name in self.flow.__dataclass_fields__},
            segments=[
                (s.seq, s.length, s.last_tx_ns, s.tx_count, s.sacked, s.lost)
                for s in (self.segments[seq] for seq in self._seq_queue)
            ],
            seq_queue=list(self._seq_queue),
            snd_una=self.snd_una,
            snd_nxt=self.snd_nxt,
            sacked_bytes=self._sacked_bytes,
            lost_bytes=self._lost_bytes,
            recovery_point=self._recovery_point,
            srtt=self._srtt,
            rttvar=self._rttvar,
            min_rtt=self._min_rtt,
            reorder_wnd_ns=self._reorder_wnd_ns,
            reorder_seen=self._reorder_seen,
            backoff=self._backoff,
            pacing_next_ns=self._pacing_next_ns,
            tlp_fired=self._tlp_fired,
            last_delivery_ns=self._last_delivery_ns,
            done=self._done,
            newest_sacked_tx=self._newest_sacked_tx,
            cc_class=type(self.cc).__name__,
            cc=self.cc.snapshot_state(),
        )

    def restore(self, state) -> None:
        """Materialize a captured flow into this (freshly built) sender."""
        from ..core.state import SnapshotError, TcpSenderState, check_version
        check_version(state, TcpSenderState)
        if state.cc_class != type(self.cc).__name__:
            raise SnapshotError(
                f"snapshot used {state.cc_class}, sender has "
                f"{type(self.cc).__name__}")
        for name, value in state.flow.items():
            setattr(self.flow, name, value)
        self.segments = {}
        for seq, length, last_tx_ns, tx_count, sacked, lost in state.segments:
            segment = _SegmentState(seq, length)
            segment.last_tx_ns = last_tx_ns
            segment.tx_count = tx_count
            segment.sacked = sacked
            segment.lost = lost
            self.segments[seq] = segment
        self._seq_queue = deque(state.seq_queue)
        self.snd_una = state.snd_una
        self.snd_nxt = state.snd_nxt
        self._sacked_bytes = state.sacked_bytes
        self._lost_bytes = state.lost_bytes
        self._recovery_point = state.recovery_point
        self._srtt = state.srtt
        self._rttvar = state.rttvar
        self._min_rtt = state.min_rtt
        self._reorder_wnd_ns = state.reorder_wnd_ns
        self._reorder_seen = state.reorder_seen
        self._backoff = state.backoff
        self._pacing_next_ns = state.pacing_next_ns
        self._pacing_scheduled = False
        self._tlp_fired = state.tlp_fired
        self._last_delivery_ns = state.last_delivery_ns
        self._done = state.done
        self._newest_sacked_tx = state.newest_sacked_tx
        self.cc.restore_state(state.cc)
        if not self._done:
            self._arm_rto()
            if self.snd_una < self.snd_nxt:
                self._arm_tlp()

    # -- completion ------------------------------------------------------------------------------------

    def _complete(self) -> None:
        self._done = True
        self.flow.end_ns = self.sim.now
        for event in (self._rto_event, self._tlp_event, self._rack_event):
            if event is not None:
                event.cancel()
        self.host.unregister_handler(self.flow.flow_id)
        if self.on_complete is not None:
            self.on_complete(self.flow)


class TcpReceiver:
    """One TCP flow's receiver endpoint: cumulative ACK + SACK + ECN echo."""

    ACK_SIZE = TCP_HEADER_BYTES + 12  # timestamp + SACK options

    def __init__(self, sim: Simulator, host: "Host", src: str, flow_id: int) -> None:
        self.sim = sim
        self.host = host
        self.src = src
        self.flow_id = flow_id
        self.rcv_nxt = 0
        self.bytes_received = 0
        self._ooo: List[Tuple[int, int]] = []  # sorted disjoint (start, end)
        host.register_handler(flow_id, self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        header = packet.tcp
        if header is None or header.is_ack:
            return
        start, end = header.seq, header.seq + header.payload
        self.bytes_received += header.payload
        if start <= self.rcv_nxt:
            self.rcv_nxt = max(self.rcv_nxt, end)
            self._merge_ooo()
        else:
            self._add_ooo(start, end)
        ece = packet.ecn is EcnCodepoint.CE
        self._send_ack(header.ts_val, ece, recent=(start, end))

    def _add_ooo(self, start: int, end: int) -> None:
        # Merge in sorted order — a new range below an existing one must
        # not be swallowed by the running merge.
        merged = []
        for s, e in sorted(self._ooo + [(start, end)]):
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        self._ooo = merged

    def _normalize(self) -> None:
        result = []
        for s, e in sorted(self._ooo):
            if result and s <= result[-1][1]:
                result[-1] = (result[-1][0], max(result[-1][1], e))
            else:
                result.append((s, e))
        self._ooo = result

    def _merge_ooo(self) -> None:
        while self._ooo and self._ooo[0][0] <= self.rcv_nxt:
            _, e = self._ooo.pop(0)
            self.rcv_nxt = max(self.rcv_nxt, e)

    def snapshot(self):
        """Capture the reassembly state (frontier + OOO ranges)."""
        from ..core.state import TcpReceiverState
        return TcpReceiverState(
            rcv_nxt=self.rcv_nxt,
            bytes_received=self.bytes_received,
            ooo=list(self._ooo),
        )

    def restore(self, state) -> None:
        from ..core.state import TcpReceiverState, check_version
        check_version(state, TcpReceiverState)
        self.rcv_nxt = state.rcv_nxt
        self.bytes_received = state.bytes_received
        self._ooo = [tuple(r) for r in state.ooo]

    def _send_ack(self, ts_val: int, ece: bool, recent: Tuple[int, int]) -> None:
        blocks = []
        if self._ooo:
            ordered = sorted(self._ooo, key=lambda r: 0 if r[0] <= recent[0] < r[1] else 1)
            blocks = ordered[:3]
        ack = Packet(
            size=self.ACK_SIZE,
            src=self.host.name,
            dst=self.src,
            flow_id=self.flow_id,
            tcp=TcpHeader(
                is_ack=True,
                ack=self.rcv_nxt,
                ts_ecr=ts_val,
                ece=ece,
                sack_blocks=tuple(blocks),
            ),
        )
        self.host.send(ack)
