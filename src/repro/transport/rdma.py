"""RoCEv2 RC transport model: NIC-offloaded reliable delivery.

The paper's RDMA experiments use one-sided ``RDMA_WRITE`` over a
reliable-connection QP whose NIC implements **go-back-N** recovery and
an ~1 ms retransmission timeout:

* the responder only accepts the expected PSN; any out-of-order packet
  is *discarded* and answered with an out-of-sequence NAK carrying the
  expected PSN;
* on a NAK the requester rewinds to that PSN and retransmits everything
  from there — which is why RDMA "has no reordering window" and why
  LinkGuardianNB's out-of-order recovery does not help multi-packet
  RDMA flows (Figure 11c);
* if the NAK or tail packets are lost, only the RTO saves the flow.

A **selective-repeat** mode models the newer "RoCE selective repeat"
NIC feature the paper's §5 points at: the responder keeps out-of-order
packets and the requester resends only the missing PSN.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.engine import Event, Simulator
from ..packets.packet import Packet, RdmaHeader
from ..units import MS
from .flow import FlowRecord

__all__ = ["RDMA_HEADER_BYTES", "RdmaRequester", "RdmaResponder"]

#: Ethernet (18) + IP (20) + UDP (8) + BTH (12) + RETH/ICRC (~20)
RDMA_HEADER_BYTES = 78
#: 1438 B payload -> 1516 B frames, close to the paper's MTU frames
DEFAULT_RDMA_MTU = 1440


class RdmaRequester:
    """Requester side of an RC QP performing one RDMA_WRITE message."""

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        dst: str,
        flow_id: int,
        size_bytes: int,
        mtu: int = DEFAULT_RDMA_MTU,
        rto_ns: int = 1 * MS,
        ack_every: int = 1,
        selective_repeat: bool = False,
        on_complete: Optional[Callable[[FlowRecord], None]] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.dst = dst
        self.mtu = mtu
        self.rto_ns = rto_ns
        self.ack_every = ack_every
        #: pair with an SR responder: resend only the NAKed PSN (§5)
        self.selective_repeat = selective_repeat
        self.on_complete = on_complete
        self.flow = FlowRecord(flow_id=flow_id, size_bytes=size_bytes)

        self.n_packets = max(1, -(-size_bytes // mtu))
        self.next_psn = 0            # next new PSN to send
        self.acked_psn = -1          # highest cumulatively acked PSN
        self._rto_event: Optional[Event] = None
        self._done = False
        self._last_goback_psn = -1
        host.register_handler(flow_id, self._on_packet)

    def start(self) -> None:
        self.flow.start_ns = self.sim.now
        self._send_from(0)

    def _payload_of(self, psn: int) -> int:
        if psn == self.n_packets - 1:
            return self.flow.size_bytes - (self.n_packets - 1) * self.mtu
        return self.mtu

    def _send_from(self, psn: int) -> None:
        """(Re)issue PSNs from ``psn`` to the end of the message.

        RC requesters blast the whole message at line rate; the NIC's
        egress queue provides the pacing.
        """
        for current in range(psn, self.n_packets):
            payload = self._payload_of(current)
            packet = Packet(
                size=payload + RDMA_HEADER_BYTES,
                src=self.host.name,
                dst=self.dst,
                flow_id=self.flow.flow_id,
                created_at=self.sim.now,
                rdma=RdmaHeader(
                    psn=current, payload=payload, last=(current == self.n_packets - 1)
                ),
            )
            self.flow.packets_sent += 1
            if current < self.next_psn:
                self.flow.retransmissions += 1
            self.host.send(packet)
        self.next_psn = max(self.next_psn, self.n_packets)
        self._arm_rto()

    def _send_one(self, psn: int) -> None:
        """Retransmit a single PSN (selective repeat)."""
        payload = self._payload_of(psn)
        packet = Packet(
            size=payload + RDMA_HEADER_BYTES,
            src=self.host.name,
            dst=self.dst,
            flow_id=self.flow.flow_id,
            created_at=self.sim.now,
            rdma=RdmaHeader(
                psn=psn, payload=payload, last=(psn == self.n_packets - 1)
            ),
        )
        self.flow.packets_sent += 1
        self.flow.retransmissions += 1
        self.host.send(packet)
        self._arm_rto()

    def _on_packet(self, packet: Packet) -> None:
        header = packet.rdma
        if self._done or header is None or not (header.is_ack or header.is_nak):
            return
        if header.is_nak:
            self.acked_psn = max(self.acked_psn, header.ack_psn - 1)
            if header.ack_psn > self._last_goback_psn:
                self._last_goback_psn = header.ack_psn
                if self.selective_repeat:
                    # RoCE selective repeat: resend only the missing PSN.
                    self._send_one(header.ack_psn)
                else:
                    # Go-back-N: rewind to the expected PSN.  Rate-limited
                    # to one go-back per hole (no rewind on dup NAKs).
                    self._send_from(header.ack_psn)
            return
        if header.ack_psn > self.acked_psn:
            self.acked_psn = header.ack_psn
            self._arm_rto()
        if self.acked_psn >= self.n_packets - 1:
            self._complete()

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        self._rto_event = self.sim.schedule(self.rto_ns, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_event = None
        if self._done:
            return
        self.flow.timeouts += 1
        self._last_goback_psn = -1
        self._send_from(self.acked_psn + 1)

    def _complete(self) -> None:
        self._done = True
        self.flow.end_ns = self.sim.now
        if self._rto_event is not None:
            self._rto_event.cancel()
        self.host.unregister_handler(self.flow.flow_id)
        if self.on_complete is not None:
            self.on_complete(self.flow)


class RdmaResponder:
    """Responder side of an RC QP (go-back-N by default)."""

    ACK_SIZE = 78  # minimum RoCE ACK frame

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        src: str,
        flow_id: int,
        selective_repeat: bool = False,
        ack_every: int = 1,
    ) -> None:
        self.sim = sim
        self.host = host
        self.src = src
        self.flow_id = flow_id
        self.selective_repeat = selective_repeat
        self.ack_every = max(1, ack_every)
        self.expected_psn = 0
        self.bytes_received = 0
        self.discarded = 0          # out-of-order packets thrown away (GBN)
        self.naks_sent = 0
        self._ooo: Dict[int, int] = {}  # psn -> payload (selective repeat)
        self._nak_outstanding = False
        host.register_handler(flow_id, self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        header = packet.rdma
        if header is None or header.is_ack or header.is_nak:
            return
        psn = header.psn
        if psn == self.expected_psn:
            self._accept(header)
            self._nak_outstanding = False
            if self.selective_repeat:
                while self.expected_psn in self._ooo:
                    self.bytes_received += self._ooo.pop(self.expected_psn)
                    self.expected_psn += 1
            self._send_ack(ack=True, psn=self.expected_psn - 1)
        elif psn > self.expected_psn:
            if self.selective_repeat:
                self._ooo[psn] = header.payload
                self._send_ack(ack=False, psn=self.expected_psn)
            else:
                # Go-back-N: discard and NAK once per out-of-sequence event.
                self.discarded += 1
                if not self._nak_outstanding:
                    self._nak_outstanding = True
                    self._send_ack(ack=False, psn=self.expected_psn)
        else:
            # Duplicate of something already delivered: re-ack.
            self._send_ack(ack=True, psn=self.expected_psn - 1)

    def _accept(self, header: RdmaHeader) -> None:
        self.bytes_received += header.payload
        self.expected_psn += 1

    def _send_ack(self, ack: bool, psn: int) -> None:
        if ack:
            # Coalesce: ack every Nth packet, but always ack the message tail.
            if (psn + 1) % self.ack_every and not self._is_tail(psn):
                return
        else:
            self.naks_sent += 1
        response = Packet(
            size=self.ACK_SIZE,
            src=self.host.name,
            dst=self.src,
            flow_id=self.flow_id,
            rdma=RdmaHeader(is_ack=ack, is_nak=not ack, ack_psn=psn),
        )
        self.host.send(response)

    def _is_tail(self, psn: int) -> bool:
        return True  # without message framing we ack conservatively
