"""Flow bookkeeping shared by all transports.

A :class:`FlowRecord` captures what the paper's FCT experiments measure:
when a message/flow started, when its last byte was acknowledged, and
what the transport had to do to get it there (retransmissions, timeouts,
cwnd reductions).  The classification experiment (Figure 13) reads the
extra DCTCP-specific fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["FlowRecord"]


@dataclass
class FlowRecord:
    """Lifecycle and diagnostic record of one flow."""

    flow_id: int
    size_bytes: int
    start_ns: Optional[int] = None
    end_ns: Optional[int] = None
    # -- transport diagnostics -------------------------------------------------
    packets_sent: int = 0
    retransmissions: int = 0           # end-to-end (transport) retransmissions
    timeouts: int = 0                  # RTO expirations
    cwnd_reductions: int = 0
    # -- Figure 13 classification inputs (DCTCP + LG_NB study) ------------------
    sacked_bytes_total: int = 0        # SACK'ed bytes received over the flow
    max_sack_burst: int = 0            # max SACK'ed bytes while a hole was open
    pending_bytes_at_reduction: int = 0
    tail_loss_recovered: bool = False  # loss within the last 3 packets
    saw_sack: bool = False

    @property
    def completed(self) -> bool:
        return self.end_ns is not None

    @property
    def fct_ns(self) -> int:
        if self.start_ns is None or self.end_ns is None:
            raise ValueError(f"flow {self.flow_id} has not completed")
        return self.end_ns - self.start_ns

    @property
    def fct_us(self) -> float:
        return self.fct_ns / 1_000.0
