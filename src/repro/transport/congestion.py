"""Congestion-control algorithms for the TCP model.

Three controllers cover the paper's evaluation (§4.2): DCTCP (ECN),
CUBIC (loss) and BBR (delay/rate).  They plug into
:class:`~repro.transport.tcp.TcpSender` through a small hook interface:

* ``on_ack(acked_bytes, ece, rtt_ns, now_ns)`` — cumulative progress;
* ``on_loss_event(now_ns)``  — fast-recovery style reduction (once per
  round trip);
* ``on_rto(now_ns)``         — collapse after a retransmission timeout;
* ``pacing_rate_bps(now_ns)``— None for ack-clocked senders, a rate for
  paced senders (BBR).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["CongestionControl", "RenoCC", "DctcpCC", "CubicCC", "BbrCC"]


class CongestionControl:
    """Base: NewReno-style slow start + AIMD, the common scaffolding."""

    #: multiplicative-decrease factor applied on a loss event
    beta = 0.5

    def __init__(self, mss: int = 1460, init_cwnd_packets: int = 10) -> None:
        self.mss = mss
        self.cwnd = init_cwnd_packets * mss
        self.ssthresh = float("inf")
        self.min_cwnd = 2 * mss
        self._acked_since_growth = 0

    # -- hooks -------------------------------------------------------------------

    def on_ack(self, acked_bytes: int, ece: bool, rtt_ns: int, now_ns: int) -> None:
        self._grow(acked_bytes)

    def on_loss_event(self, now_ns: int) -> None:
        self.ssthresh = max(self.min_cwnd, int(self.cwnd * self.beta))
        self.cwnd = self.ssthresh

    def on_rto(self, now_ns: int) -> None:
        self.ssthresh = max(self.min_cwnd, self.cwnd // 2)
        self.cwnd = self.min_cwnd

    def pacing_rate_bps(self, now_ns: int) -> Optional[int]:
        return None

    # -- snapshot / restore ----------------------------------------------------------
    # Controllers hold only plain scalars and tuples-in-lists, so a generic
    # attribute copy covers every subclass without per-CC versioning.

    def snapshot_state(self) -> dict:
        return {
            key: list(value) if isinstance(value, list) else value
            for key, value in vars(self).items()
        }

    def restore_state(self, state: dict) -> None:
        for key, value in state.items():
            setattr(self, key, list(value) if isinstance(value, list) else value)

    # -- shared machinery -----------------------------------------------------------

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def _grow(self, acked_bytes: int) -> None:
        if self.in_slow_start:
            self.cwnd += acked_bytes
            return
        self._acked_since_growth += acked_bytes
        if self._acked_since_growth >= self.cwnd:
            self._acked_since_growth -= self.cwnd
            self.cwnd += self.mss


class RenoCC(CongestionControl):
    """Plain NewReno — the baseline the others specialize."""


class DctcpCC(CongestionControl):
    """DCTCP (Alizadeh et al., SIGCOMM 2010).

    alpha <- (1 - g) * alpha + g * F once per window, where F is the
    fraction of ECN-marked bytes; on a marked window the sender cuts
    cwnd by ``alpha / 2``.  Packet loss falls back to the Reno cut.
    """

    def __init__(self, mss: int = 1460, init_cwnd_packets: int = 10,
                 g: float = 1.0 / 16.0) -> None:
        super().__init__(mss, init_cwnd_packets)
        self.g = g
        self.alpha = 1.0
        self._window_acked = 0
        self._window_marked = 0
        self._window_end_bytes = 0  # bytes to ack before closing the window
        self._cut_this_window = False

    def on_ack(self, acked_bytes: int, ece: bool, rtt_ns: int, now_ns: int) -> None:
        self._window_acked += acked_bytes
        if ece:
            self._window_marked += acked_bytes
            if not self._cut_this_window:
                # React immediately (once per window) like the Linux
                # implementation: cut by the running alpha.
                self.cwnd = max(self.min_cwnd, int(self.cwnd * (1 - self.alpha / 2)))
                self.ssthresh = self.cwnd
                self._cut_this_window = True
        if self._window_acked >= self.cwnd:
            fraction = self._window_marked / max(1, self._window_acked)
            self.alpha = (1 - self.g) * self.alpha + self.g * fraction
            self._window_acked = 0
            self._window_marked = 0
            self._cut_this_window = False
        if not ece:
            self._grow(acked_bytes)


class CubicCC(CongestionControl):
    """CUBIC (RFC 8312): w(t) = C (t - K)^3 + w_max, beta = 0.7."""

    beta = 0.7
    C = 0.4  # units: MSS / s^3

    def __init__(self, mss: int = 1460, init_cwnd_packets: int = 10) -> None:
        super().__init__(mss, init_cwnd_packets)
        self._w_max = 0.0            # in MSS
        self._epoch_start_ns: Optional[int] = None
        self._k = 0.0

    def on_loss_event(self, now_ns: int) -> None:
        self._w_max = self.cwnd / self.mss
        self.ssthresh = max(self.min_cwnd, int(self.cwnd * self.beta))
        self.cwnd = self.ssthresh
        self._epoch_start_ns = None

    def on_rto(self, now_ns: int) -> None:
        super().on_rto(now_ns)
        self._epoch_start_ns = None

    def on_ack(self, acked_bytes: int, ece: bool, rtt_ns: int, now_ns: int) -> None:
        if self.in_slow_start:
            self.cwnd += acked_bytes
            return
        if self._epoch_start_ns is None:
            self._epoch_start_ns = now_ns
            w0 = self.cwnd / self.mss
            self._k = ((max(0.0, self._w_max - w0)) / self.C) ** (1.0 / 3.0)
        t = (now_ns - self._epoch_start_ns) / 1e9 + rtt_ns / 1e9
        w_cubic = self.C * (t - self._k) ** 3 + max(self._w_max, self.cwnd / self.mss)
        target = max(self.min_cwnd, int(w_cubic * self.mss))
        if target > self.cwnd:
            # Approach the cubic target over one RTT.
            self.cwnd += max(1, (target - self.cwnd) * acked_bytes // max(self.cwnd, 1))
        else:
            self._grow(acked_bytes)  # TCP-friendly region fallback


class BbrCC(CongestionControl):
    """A compact BBR: windowed-max bandwidth filter, pacing, 2xBDP cwnd.

    Loss is ignored (BBR is loss-agnostic, §4.2/§B.3); only the RTO path
    collapses the window.  Startup uses a 2.89 pacing gain until the
    bandwidth estimate stops growing, then the sender settles into the
    steady 8-phase probe cycle.
    """

    STARTUP_GAIN = 2.89
    DRAIN_GAIN = 1.0 / 2.89
    CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)

    def __init__(self, mss: int = 1460, init_cwnd_packets: int = 10) -> None:
        super().__init__(mss, init_cwnd_packets)
        self._btlbw_bps = 0.0
        self._samples = []            # (time_ns, bw_bps), 10-RTT max filter
        self._min_rtt_ns = None
        self._state = "startup"
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._cycle_index = 0
        self._cycle_stamp = 0

    def deliver_sample(self, delivered_bytes: int, interval_ns: int, now_ns: int) -> None:
        """Feed a delivery-rate sample (called by the sender per ACK)."""
        if interval_ns <= 0:
            return
        bw = delivered_bytes * 8 * 1e9 / interval_ns
        window = 10 * (self._min_rtt_ns or 1_000_000)
        self._samples = [(t, b) for t, b in self._samples if now_ns - t < window]
        self._samples.append((now_ns, bw))
        self._btlbw_bps = max(b for _, b in self._samples)
        self._advance_state(now_ns)

    def on_ack(self, acked_bytes: int, ece: bool, rtt_ns: int, now_ns: int) -> None:
        if self._min_rtt_ns is None or rtt_ns < self._min_rtt_ns:
            self._min_rtt_ns = rtt_ns
        bdp = self._bdp_bytes()
        if bdp:
            self.cwnd = max(self.min_cwnd, int(2 * bdp))
        else:
            self.cwnd += acked_bytes  # startup before first bw estimate

    def on_loss_event(self, now_ns: int) -> None:
        pass  # loss-agnostic

    def pacing_rate_bps(self, now_ns: int) -> Optional[int]:
        if not self._btlbw_bps:
            return None  # unpaced until the first bandwidth sample
        return max(int(self._gain(now_ns) * self._btlbw_bps), 8 * self.mss)

    def _bdp_bytes(self) -> int:
        if not self._btlbw_bps or self._min_rtt_ns is None:
            return 0
        return int(self._btlbw_bps / 8 * self._min_rtt_ns / 1e9)

    def _gain(self, now_ns: int) -> float:
        if self._state == "startup":
            return self.STARTUP_GAIN
        if self._state == "drain":
            return self.DRAIN_GAIN
        rtt = self._min_rtt_ns or 1_000_000
        if now_ns - self._cycle_stamp > rtt:
            self._cycle_stamp = now_ns
            self._cycle_index = (self._cycle_index + 1) % len(self.CYCLE)
        return self.CYCLE[self._cycle_index]

    def _advance_state(self, now_ns: int) -> None:
        if self._state == "startup":
            if self._btlbw_bps > self._full_bw * 1.25:
                self._full_bw = self._btlbw_bps
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= 3:
                    self._state = "drain"
                    self._cycle_stamp = now_ns
        elif self._state == "drain":
            self._state = "probe_bw"
            self._cycle_stamp = now_ns
