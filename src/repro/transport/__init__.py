"""Endpoint transports: TCP (DCTCP/CUBIC/BBR), RDMA RC, and UDP."""

from .congestion import BbrCC, CongestionControl, CubicCC, DctcpCC, RenoCC
from .flow import FlowRecord
from .rdma import RDMA_HEADER_BYTES, RdmaRequester, RdmaResponder
from .tcp import TCP_HEADER_BYTES, TcpReceiver, TcpSender
from .udp import UdpSink, UdpSource

__all__ = [
    "BbrCC", "CongestionControl", "CubicCC", "DctcpCC", "RenoCC",
    "FlowRecord",
    "RDMA_HEADER_BYTES", "RdmaRequester", "RdmaResponder",
    "TCP_HEADER_BYTES", "TcpReceiver", "TcpSender",
    "UdpSink", "UdpSource",
]
