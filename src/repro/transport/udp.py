"""Constant-rate UDP traffic source and counting sink.

The paper measures "effective link speed" by pushing a line-rate UDP
flow across the protected link and reading the delivered goodput; the
stress tests of §4.1 do the same with the switch packet generator.
"""

from __future__ import annotations

from typing import Optional

from ..core.engine import Simulator
from ..packets.packet import Packet
from ..units import SEC, wire_bytes

__all__ = ["UDP_HEADER_BYTES", "UdpSource", "UdpSink"]

UDP_HEADER_BYTES = 46  # Eth(18) + IP(20) + UDP(8)


class UdpSource:
    """Emits fixed-size packets at a constant bit rate until stopped."""

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        dst: str,
        flow_id: int,
        rate_bps: int,
        frame_bytes: int = 1518,
    ) -> None:
        self.sim = sim
        self.host = host
        self.dst = dst
        self.flow_id = flow_id
        self.rate_bps = int(rate_bps)
        self.frame_bytes = frame_bytes
        self.sent = 0
        self._running = False
        self._interval_ns = wire_bytes(frame_bytes) * 8 * SEC // self.rate_bps

    def start(self) -> None:
        self._running = True
        self._emit()

    def stop(self) -> None:
        self._running = False

    def _emit(self) -> None:
        if not self._running:
            return
        packet = Packet(
            size=self.frame_bytes,
            src=self.host.name,
            dst=self.dst,
            flow_id=self.flow_id,
            created_at=self.sim.now,
        )
        self.sent += 1
        self.host.send(packet)
        self.sim.schedule(self._interval_ns, self._emit)


class UdpSink:
    """Counts delivered packets/bytes and computes goodput over a window."""

    def __init__(self, sim: Simulator, host: "Host", flow_id: int) -> None:
        self.sim = sim
        self.received = 0
        self.received_bytes = 0
        self.first_ns: Optional[int] = None
        self.last_ns: Optional[int] = None
        host.register_handler(flow_id, self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        if self.first_ns is None:
            self.first_ns = self.sim.now
        self.last_ns = self.sim.now
        self.received += 1
        self.received_bytes += packet.size

    def goodput_bps(self) -> float:
        if self.first_ns is None or self.last_ns is None or self.last_ns == self.first_ns:
            return 0.0
        return self.received_bytes * 8 * SEC / (self.last_ns - self.first_ns)
