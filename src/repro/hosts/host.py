"""End-host model: NIC, stack delay, and per-flow demultiplexing.

A :class:`Host` owns one NIC port attached to a switch.  The configurable
``stack_delay_ns`` stands in for everything the paper's 30 µs TCP RTT
contains besides wire time — kernel, driver and interrupt latency — and
is much smaller for the NIC-offloaded RDMA transport.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.engine import Simulator
from ..packets.packet import Packet
from ..switchsim.link import Link
from ..switchsim.port import EgressPort
from ..switchsim.queues import Queue
from ..switchsim.switch import Switch
from ..units import gbps

__all__ = ["Host"]


class Host:
    """A server with one NIC, attachable to a switch port."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: int = gbps(100),
        stack_delay_ns: int = 6_000,
        obs=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.rate_bps = int(rate_bps)
        self.stack_delay_ns = int(stack_delay_ns)
        self.obs = obs
        self.nic: Optional[EgressPort] = None
        self._handlers: Dict[int, Callable[[Packet], None]] = {}
        self._default_handler: Optional[Callable[[Packet], None]] = None
        self.received = 0
        self.received_bytes = 0
        if obs is not None:
            obs.registry.register_provider(f"host.{name}", self.obs_snapshot)

    def obs_snapshot(self) -> dict:
        return {
            "received": self.received,
            "received_bytes": self.received_bytes,
        }

    # -- wiring ---------------------------------------------------------------------

    def attach(self, switch: Switch, propagation_ns: int = 500,
               queue_capacity: Optional[int] = None) -> None:
        """Cable this host to ``switch`` (both directions) and install routes."""
        uplink = Link(
            self.sim, propagation_ns,
            receiver=switch.receiver_for(self.name),
            name=f"{self.name}->{switch.name}",
            obs=self.obs,
        )
        self.nic = EgressPort(
            self.sim, self.rate_bps, uplink,
            queues=[Queue(capacity_bytes=queue_capacity)], name=f"{self.name}:nic",
        )
        downlink = Link(
            self.sim, propagation_ns,
            receiver=self._on_wire_packet,
            name=f"{switch.name}->{self.name}",
            obs=self.obs,
        )
        switch.add_port(self.name, self.rate_bps, downlink)
        switch.set_route(self.name, self.name)

    # -- datapath ----------------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Transmit through the stack and NIC."""
        if self.nic is None:
            raise RuntimeError(f"host {self.name} is not attached to a switch")
        self.sim.schedule(self.stack_delay_ns, self.nic.enqueue, packet, 0)

    def _on_wire_packet(self, packet: Packet) -> None:
        self.sim.schedule(self.stack_delay_ns, self._dispatch, packet)

    def _dispatch(self, packet: Packet) -> None:
        self.received += 1
        self.received_bytes += packet.size
        handler = self._handlers.get(packet.flow_id, self._default_handler)
        if handler is not None:
            handler(packet)

    # -- demux registration -----------------------------------------------------------------

    def register_handler(self, flow_id: int, handler: Callable[[Packet], None]) -> None:
        self._handlers[flow_id] = handler

    def unregister_handler(self, flow_id: int) -> None:
        self._handlers.pop(flow_id, None)

    def set_default_handler(self, handler: Callable[[Packet], None]) -> None:
        """Catch-all for flows with no registered endpoint (listening socket)."""
        self._default_handler = handler
