"""End-host and NIC models."""

from .host import Host

__all__ = ["Host"]
