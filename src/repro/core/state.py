"""Versioned snapshot state for mid-run materialization.

Every stateful hot-path component — LinkGuardian endpoints, switchsim
ports/queues/links, transport flows, RNG streams — exposes explicit
``snapshot()``/``restore()`` (or ``snapshot_state()``/``restore_state()``
where ``snapshot()`` was already taken by the obs layer).  The state
dataclasses live here so their versions are centralized: a snapshot is
plain data (ints, strings, lists, :class:`~repro.packets.packet.Packet`
copies) — **never** scheduled events, callbacks, or anything pickled.

The separation this enforces is the contract the hybrid splicing backend
(:mod:`repro.fastpath.splice`) is built on:

* **protocol state** (sequence counters, buffers, scoreboards, counters,
  RNG positions) is captured and restored verbatim;
* **scheduled-event plumbing** (pending timers, in-flight frames,
  serializer callbacks) is *not* captured — ``restore()`` re-arms what
  protocol state implies (ackNoTimeout deadlines from stored detection
  times, RTO/TLP from the estimator, self-replenishing ACK/dummy
  cycles), exactly as activation would.

Snapshots are therefore taken at *data-quiescent* points: no protected
data/retx frames in flight and no mid-drain release pending.  Control
cycles (dummies, explicit ACKs) may be mid-flight; restore re-primes
them.

Version bumps: change a dataclass's layout ⇒ bump its ``VERSION``;
``check_version`` turns a stale snapshot into a loud
:class:`SnapshotError` instead of a silently-wrong simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "SnapshotError", "check_version",
    "rng_state", "rng_restore",
    "RngState", "SeqState", "OccupancyState", "CountersState",
    "QueueState", "PortState", "LossState", "LinkState",
    "TxEntryState", "SenderState", "ReceiverState",
    "ProtectedLinkState", "BidirectionalLinkState",
    "TcpSenderState", "TcpReceiverState",
]


class SnapshotError(RuntimeError):
    """A snapshot cannot be taken or restored (version skew, wrong type)."""


def check_version(state: Any, cls: type) -> None:
    """Validate ``state`` is a ``cls`` snapshot of the current version."""
    if not isinstance(state, cls):
        raise SnapshotError(
            f"expected {cls.__name__}, got {type(state).__name__}")
    if state.version != cls.VERSION:
        raise SnapshotError(
            f"{cls.__name__} version {state.version} != "
            f"current {cls.VERSION}; snapshot is stale")


# -- RNG streams ------------------------------------------------------------

@dataclass
class RngState:
    """Full bit-generator state of a ``numpy.random.Generator`` stream."""

    VERSION = 1
    state: Dict[str, Any]
    version: int = 1


def rng_state(gen: np.random.Generator) -> RngState:
    """Capture a generator's position (plain nested dicts, no pickling)."""
    return RngState(state=gen.bit_generator.state)


def rng_restore(gen: np.random.Generator, snap: RngState) -> None:
    """Rewind/advance ``gen`` to the captured position."""
    check_version(snap, RngState)
    gen.bit_generator.state = snap.state


# -- small building blocks --------------------------------------------------

@dataclass
class SeqState:
    """An era'd 16-bit sequence counter position."""

    VERSION = 1
    value: int
    era: int
    version: int = 1


@dataclass
class OccupancyState:
    """A time-weighted occupancy tracker (buffer-usage distributions)."""

    VERSION = 1
    last_time: int
    value: int
    samples: List[Tuple[int, int]]
    max_value: int
    version: int = 1


@dataclass
class CountersState:
    """Port TX/RX frame+byte counters."""

    VERSION = 1
    frames_tx: int
    bytes_tx: int
    frames_rx_ok: int
    frames_rx_all: int
    bytes_rx_ok: int
    version: int = 1


@dataclass
class QueueState:
    """One egress queue: held frames (copies) plus lifetime counters."""

    VERSION = 1
    name: str
    packets: List[Any]                 # Packet copies, in FIFO order
    stats: Dict[str, int]
    version: int = 1


@dataclass
class PortState:
    """A strict-priority egress port: queues, pause bits, counters.

    The serializer (``busy`` flag + in-flight frame) is event plumbing
    and is not captured; ``restore_state`` re-kicks from queue content.
    """

    VERSION = 1
    paused: List[bool]
    counters: CountersState
    queues: List[QueueState]
    version: int = 1


@dataclass
class LossState:
    """A corruption process: kind tag + per-kind fields + RNG position."""

    VERSION = 1
    kind: str
    data: Dict[str, Any]
    rng: Optional[RngState] = None
    version: int = 1


@dataclass
class LinkState:
    """One link direction: RX counters and the attached loss process."""

    VERSION = 1
    counters: CountersState
    loss: Optional[LossState]
    version: int = 1


# -- LinkGuardian endpoints -------------------------------------------------

@dataclass
class TxEntryState:
    """One mirrored Tx-buffer copy awaiting ACK or retransmission."""

    VERSION = 1
    seqno: int
    era: int
    packet: Any                        # Packet copy
    mirrored_at: int
    version: int = 1


@dataclass
class SenderState:
    """LgSender protocol state (paper §3: seqNo space + Tx buffer)."""

    VERSION = 1
    stats: Dict[str, int]
    seq: SeqState
    acked_next: Tuple[int, int]
    n_copies: int
    active: bool
    buffer: List[TxEntryState]
    requested: List[Tuple[int, int]]
    buffer_bytes: int
    occupancy: OccupancyState
    paused_at: Optional[int] = None
    phase_rng: Optional[RngState] = None
    version: int = 1


@dataclass
class ReceiverState:
    """LgReceiver protocol state (§3.1–§3.5: frontier, reordering buffer,
    outstanding losses, backpressure).  ``missing`` maps seqNo keys to
    their detection times — ``restore`` re-arms each ackNoTimeout from
    ``detection + ack_no_timeout`` rather than storing timer events."""

    VERSION = 1
    stats: Dict[str, Any]              # includes retx_delays_ns list copy
    next_rx: SeqState
    ack_no: SeqState
    missing: Dict[Tuple[int, int], int]
    gave_up: List[Tuple[int, int]]
    buffer: List[Tuple[Tuple[int, int], Any]]   # (key, Packet copy)
    buffer_bytes: int
    paused_sender: bool
    delivered_retx: List[Tuple[int, int]]
    nb_floor: Optional[Tuple[int, int]]
    nb_floor_expiry_ns: int
    ordered: bool                      # config.ordered (mutated by NB fallback)
    active: bool
    occupancy: OccupancyState
    paused_at: Optional[int] = None
    stall_key: Optional[Tuple[int, int]] = None
    version: int = 1


@dataclass
class ProtectedLinkState:
    """A full ProtectedLink: both endpoints, both ports, both links, and
    the capture-time clock (restore jumps a fresh simulator there)."""

    VERSION = 1
    sim_now: int
    sender: SenderState
    receiver: ReceiverState
    sender_port: PortState
    receiver_port: PortState
    forward_link: LinkState
    reverse_link: LinkState
    version: int = 1


@dataclass
class BidirectionalLinkState:
    """Both halves of a BidirectionalProtectedLink."""

    VERSION = 1
    sim_now: int
    a_sender: SenderState
    a_receiver: ReceiverState
    b_sender: SenderState
    b_receiver: ReceiverState
    a_port: PortState
    b_port: PortState
    link_ab: LinkState
    link_ba: LinkState
    version: int = 1


# -- transport flows --------------------------------------------------------

@dataclass
class TcpSenderState:
    """A TCP flow's sender: SACK scoreboard, windows, RTT estimator and
    congestion-controller state.  Timer events (RTO/TLP/RACK/pacing) are
    plumbing — ``restore`` re-arms RTO and TLP from the estimator."""

    VERSION = 1
    flow: Dict[str, Any]               # FlowRecord fields
    segments: List[Tuple[int, int, int, int, bool, bool]]
    #                  (seq, length, last_tx_ns, tx_count, sacked, lost)
    seq_queue: List[int]
    snd_una: int
    snd_nxt: int
    sacked_bytes: int
    lost_bytes: int
    recovery_point: int
    srtt: Optional[int]
    rttvar: int
    min_rtt: Optional[int]
    reorder_wnd_ns: int
    reorder_seen: bool
    backoff: int
    pacing_next_ns: int
    tlp_fired: bool
    last_delivery_ns: Optional[int]
    done: bool
    newest_sacked_tx: int
    cc_class: str
    cc: Dict[str, Any]
    version: int = 1


@dataclass
class TcpReceiverState:
    """A TCP flow's receiver: the cumulative/OOO reassembly state."""

    VERSION = 1
    rcv_nxt: int
    bytes_received: int
    ooo: List[Tuple[int, int]]
    version: int = 1


# -- loss-process helpers ---------------------------------------------------
# Dispatch lives here (not on the classes) so LossState stays one tagged
# shape; the phy layer calls these from its snapshot_state/restore_state.

def loss_fields(process) -> Tuple[str, Dict[str, Any], Optional[RngState]]:
    """(kind, fields, rng) for a known loss process."""
    from ..phy.loss import (
        BernoulliLoss, DataFrameLoss, GilbertElliottLoss, NoLoss,
        ScriptedLoss,
    )

    if isinstance(process, NoLoss):
        return "none", {}, None
    if isinstance(process, BernoulliLoss):
        return ("bernoulli",
                {"rate": process.rate, "until_next": process._until_next},
                rng_state(process._rng))
    if isinstance(process, GilbertElliottLoss):
        return ("gilbert-elliott",
                {"rate": process.rate, "mean_burst": process.mean_burst,
                 "bad": process._bad},
                rng_state(process._rng))
    if isinstance(process, ScriptedLoss):
        return ("scripted",
                {"drop_indices": sorted(process.drop_indices),
                 "index": process._index},
                None)
    if isinstance(process, DataFrameLoss):
        return ("data-frame",
                {"drop_indices": sorted(process.drop_indices),
                 "per_flow": {flow: sorted(indices)
                              for flow, indices in process.per_flow.items()},
                 "seen": process._seen,
                 "flow_seen": dict(process._flow_seen),
                 "rate": process.rate},
                None)
    raise SnapshotError(
        f"no snapshot support for loss process {type(process).__name__}")


def loss_apply(process, snap: LossState) -> None:
    """Restore a loss process's position from its captured fields."""
    from ..phy.loss import (
        BernoulliLoss, DataFrameLoss, GilbertElliottLoss, NoLoss,
        ScriptedLoss,
    )

    check_version(snap, LossState)
    kind, data = snap.kind, snap.data
    if kind == "none":
        if not isinstance(process, NoLoss):
            raise SnapshotError(f"snapshot is NoLoss, target is {type(process).__name__}")
        return
    if kind == "bernoulli" and isinstance(process, BernoulliLoss):
        process._until_next = data["until_next"]
        rng_restore(process._rng, snap.rng)
        return
    if kind == "gilbert-elliott" and isinstance(process, GilbertElliottLoss):
        process._bad = data["bad"]
        rng_restore(process._rng, snap.rng)
        return
    if kind == "scripted" and isinstance(process, ScriptedLoss):
        process.drop_indices = set(data["drop_indices"])
        process._index = data["index"]
        return
    if kind == "data-frame" and isinstance(process, DataFrameLoss):
        process.drop_indices = set(data["drop_indices"])
        process.per_flow = {flow: set(indices)
                            for flow, indices in data["per_flow"].items()}
        process._seen = data["seen"]
        process._flow_seen = dict(data["flow_seen"])
        process.rate = data.get("rate", 0.0)
        return
    raise SnapshotError(
        f"loss snapshot kind {kind!r} does not match {type(process).__name__}")
