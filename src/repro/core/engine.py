"""Discrete-event simulation kernel.

The whole reproduction runs on a single-threaded event loop with integer
nanosecond timestamps.  Integer time keeps event ordering exact (no float
round-off when two packets are scheduled back-to-back at 100G) and makes
experiments reproducible bit-for-bit given a seed.

The pending-event set lives behind the :class:`EventQueue` interface.
Two implementations ship:

* :class:`HeapEventQueue` — the reference ``heapq`` priority queue;
* :class:`CalendarEventQueue` — a calendar/bucket queue tuned for the
  dominant scheduling pattern here (fixed-latency serialization and
  timer delays, so events cluster into a narrow moving window of
  timestamps).  Pushes into the bucket currently being drained are a
  ``bisect`` insert; pushes into future buckets are plain appends with
  one day-heap operation per *distinct* bucket, not per event.

Both maintain the same total order — ``(time, seq)`` with ``seq`` the
insertion counter — so dispatch order is bit-identical between them
(guaranteed by tests, relied on by every "same seed ⇒ same bytes"
claim in the repo).

Typical usage::

    sim = Simulator()                     # or Simulator(queue="calendar")
    sim.schedule(1000, lambda: print("1 microsecond in"))
    sim.run(until=1_000_000)
"""

from __future__ import annotations

import heapq
import itertools
import sys
import time
from bisect import insort
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

__all__ = [
    "Event", "EventQueue", "HeapEventQueue", "CalendarEventQueue",
    "Simulator", "SimError",
]


class SimError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and can be cancelled with
    :meth:`cancel` before they fire.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "owner")

    def __init__(self, time: int, seq: int, callback: Callable[..., Any], args: Tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: the Simulator this event is pending in; cleared on dispatch so
        #: a late ``cancel()`` on a fired handle stays a cheap no-op.
        self.owner = None

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        owner = self.owner
        if owner is not None:
            owner._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        # Ties break on insertion order so same-time events fire FIFO.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, {getattr(self.callback, '__name__', self.callback)}, {state})"


class EventQueue:
    """The pending-event set: a strict ``(time, seq)`` priority queue.

    The contract every implementation must honor (and that
    ``tests/test_engine.py`` locks in):

    * ``pop()`` returns pending events in ascending ``(time, seq)``
      order — same-time events fire FIFO in insertion order — skipping
      (and discarding) cancelled entries;
    * ``peek_time()`` returns the timestamp the next ``pop()`` would
      dispatch, discarding cancelled entries it passes over, without
      consuming a live event;
    * events pushed *while draining* (zero-delay self-rescheduling)
      take their place in the same total order;
    * ``skipped_cancelled`` counts cancelled entries discarded by
      ``pop``/``peek_time``; ``cancelled_pending`` is maintained by the
      Simulator and must be decremented on every such skip;
    * ``compact()`` removes all cancelled entries in one pass.

    Implementations never inspect ``callback``/``args`` — ordering
    depends only on ``(time, seq)``, which is what makes dispatch order
    bit-identical across implementations.
    """

    #: registry name, reported in ``Simulator.obs_snapshot()``
    name = "abstract"

    def __init__(self) -> None:
        #: cancelled entries still occupying the queue (Simulator policy
        #: input for eager compaction)
        self.cancelled_pending = 0

    def push(self, event: Event) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None when empty."""
        raise NotImplementedError

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or None when empty."""
        raise NotImplementedError

    def compact(self) -> int:
        """Drop every cancelled entry; returns how many were removed."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        """Entries currently held, cancelled ones included."""
        raise NotImplementedError


class HeapEventQueue(EventQueue):
    """The reference implementation: a binary heap (``heapq``)."""

    name = "heap"

    def __init__(self) -> None:
        super().__init__()
        self._heap: List[Event] = []

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)

    def pop(self) -> Optional[Event]:
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                self.cancelled_pending -= 1
                continue
            return event
        return None

    def peek_time(self) -> Optional[int]:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self.cancelled_pending -= 1
        return heap[0].time if heap else None

    def compact(self) -> int:
        live = [e for e in self._heap if not e.cancelled]
        removed = len(self._heap) - len(live)
        heapq.heapify(live)
        self._heap = live
        self.cancelled_pending = 0
        return removed

    def clear(self) -> None:
        self._heap.clear()
        self.cancelled_pending = 0

    def __len__(self) -> int:
        return len(self._heap)


class CalendarEventQueue(EventQueue):
    """A calendar/bucket queue keyed on ``time // bucket_ns``.

    Simulated traffic here schedules almost exclusively at a handful of
    fixed latencies (serialization times, propagation, recirculation
    loops, protocol timers), so pending timestamps cluster into a narrow
    window that slides forward with the clock.  A calendar queue turns
    that into O(1) appends: each *bucket* ("day") is an unsorted list
    that is sorted once, when the clock reaches it; only the set of
    non-empty days goes through a (much smaller) day-heap.

    Pushes into the day currently being drained keep exact order via a
    ``bisect`` insert after the drain cursor — which is what makes
    zero-delay self-rescheduling and same-time FIFO behave identically
    to the reference heap.
    """

    name = "calendar"

    def __init__(self, bucket_ns: int = 4096) -> None:
        super().__init__()
        if bucket_ns <= 0:
            raise ValueError(f"bucket_ns must be positive, got {bucket_ns}")
        self._bucket_ns = int(bucket_ns)
        self._days: Dict[int, List[Event]] = {}   # future days, unsorted
        self._day_heap: List[int] = []            # non-empty future days
        self._cur_day = -1
        self._cur: List[Event] = []               # opened day, sorted
        self._cur_idx = 0                         # drain cursor into _cur
        self._len = 0

    def push(self, event: Event) -> None:
        day = event.time // self._bucket_ns
        self._len += 1
        if day == self._cur_day:
            # Into the day being drained: keep (time, seq) order.  New
            # events sort at/after the cursor (time >= now), so the
            # search range starts there.
            insort(self._cur, event, lo=self._cur_idx)
            return
        if day < self._cur_day and self._cur_idx < len(self._cur):
            # An event before the opened day (possible when peek_time()
            # opened a day ahead of the idle clock): put the remainder
            # of the opened day back so pop() re-selects the minimum.
            self._days[self._cur_day] = self._cur[self._cur_idx:]
            heapq.heappush(self._day_heap, self._cur_day)
            self._cur_day = -1
            self._cur = []
            self._cur_idx = 0
        bucket = self._days.get(day)
        if bucket is None:
            self._days[day] = [event]
            heapq.heappush(self._day_heap, day)
        else:
            bucket.append(event)

    def _open_next_day(self) -> bool:
        """Sort and install the earliest non-empty future day."""
        while self._day_heap:
            day = heapq.heappop(self._day_heap)
            bucket = self._days.pop(day, None)
            if bucket is None:
                continue  # stale heap entry from a re-stash
            bucket.sort()
            self._cur_day = day
            self._cur = bucket
            self._cur_idx = 0
            return True
        self._cur_day = -1
        self._cur = []
        self._cur_idx = 0
        return False

    def pop(self) -> Optional[Event]:
        while True:
            if self._cur_idx >= len(self._cur):
                if not self._open_next_day():
                    return None
            event = self._cur[self._cur_idx]
            self._cur_idx += 1
            self._len -= 1
            if self._cur_idx >= len(self._cur):
                self._cur = []
                self._cur_idx = 0
                # _cur_day stays: same-day pushes may still arrive
            if event.cancelled:
                self.cancelled_pending -= 1
                continue
            return event

    def peek_time(self) -> Optional[int]:
        while True:
            if self._cur_idx >= len(self._cur):
                if not self._open_next_day():
                    return None
            event = self._cur[self._cur_idx]
            if event.cancelled:
                self._cur_idx += 1
                self._len -= 1
                self.cancelled_pending -= 1
                continue
            return event.time

    def compact(self) -> int:
        removed = 0
        live = [e for e in self._cur[self._cur_idx:] if not e.cancelled]
        removed += len(self._cur) - self._cur_idx - len(live)
        self._cur = live
        self._cur_idx = 0
        for day in list(self._days):
            bucket = [e for e in self._days[day] if not e.cancelled]
            removed += len(self._days[day]) - len(bucket)
            if bucket:
                self._days[day] = bucket
            else:
                del self._days[day]  # the day-heap entry goes stale
        self._len -= removed
        self.cancelled_pending = 0
        return removed

    def clear(self) -> None:
        self._days.clear()
        self._day_heap.clear()
        self._cur_day = -1
        self._cur = []
        self._cur_idx = 0
        self._len = 0
        self.cancelled_pending = 0

    def __len__(self) -> int:
        return self._len


#: selectable queue implementations for ``Simulator(queue=...)``
EVENT_QUEUES: Dict[str, type] = {
    HeapEventQueue.name: HeapEventQueue,
    CalendarEventQueue.name: CalendarEventQueue,
}


class Simulator:
    """Single-threaded discrete-event simulator with integer-ns time.

    ``queue`` selects the pending-event structure: an implementation
    name (``"heap"`` — the default — or ``"calendar"``) or an
    :class:`EventQueue` instance.  Dispatch order is identical across
    implementations; the choice is purely a throughput knob.
    """

    #: cap on recycled Event objects kept for reuse
    POOL_CAP = 512
    #: below this many pending entries, cancelled events are left for
    #: lazy pop-side skipping rather than compacted eagerly
    COMPACT_MIN = 64

    def __init__(self, obs=None, queue: Union[str, EventQueue] = "heap") -> None:
        if isinstance(queue, str):
            try:
                queue = EVENT_QUEUES[queue]()
            except KeyError:
                raise SimError(
                    f"unknown event queue {queue!r}; "
                    f"known: {sorted(EVENT_QUEUES)}") from None
        self._now: int = 0
        self._queue: EventQueue = queue
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._events_cancelled = 0
        self._events_compacted = 0
        self._heap_high_watermark = 0
        self._wall_seconds = 0.0
        self._pool: List[Event] = []
        self.obs = obs
        if obs is not None:
            obs.registry.register_provider("engine", self.obs_snapshot)
            # obs v2: lets the flight recorder install its sampling tick
            # (duck-typed so bare registry+tracer stand-ins keep working).
            attach = getattr(obs, "attach_engine", None)
            if attach is not None:
                attach(self)

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def queue(self) -> EventQueue:
        """The pending-event structure (for introspection/tests)."""
        return self._queue

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far (for overhead accounting)."""
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Number of pending events cancelled so far."""
        return self._events_cancelled

    @property
    def heap_high_watermark(self) -> int:
        """Largest number of pending events ever held at once."""
        return self._heap_high_watermark

    @property
    def wall_seconds(self) -> float:
        """Host wall-clock time spent inside :meth:`run` so far."""
        return self._wall_seconds

    def obs_snapshot(self) -> dict:
        """Kernel self-measurement: the substrate for all perf claims."""
        sim_seconds = self._now / 1e9
        return {
            "events_processed": self._events_processed,
            "events_cancelled": self._events_cancelled,
            "events_compacted": self._events_compacted,
            "heap_high_watermark": self._heap_high_watermark,
            "heap_pending": len(self._queue),
            "queue_impl": self._queue.name,
            "event_pool_size": len(self._pool),
            "sim_time_ns": self._now,
            "wall_seconds": self._wall_seconds,
            "wall_seconds_per_sim_second": (
                self._wall_seconds / sim_seconds if sim_seconds > 0 else 0.0
            ),
            "events_per_wall_second": (
                self._events_processed / self._wall_seconds
                if self._wall_seconds > 0 else 0.0
            ),
        }

    # -- cancellation bookkeeping (called from Event.cancel) ------------------

    def _note_cancel(self) -> None:
        self._events_cancelled += 1
        queue = self._queue
        queue.cancelled_pending += 1
        # Eager compaction: cancelled entries would otherwise linger
        # until the pop path reaches their timestamps — on timer-heavy
        # workloads (every ACK re-arms RTO/TLP/RACK) that is most of the
        # queue.  Compact when they exceed half the pending set.
        if (queue.cancelled_pending * 2 > len(queue)
                and len(queue) >= self.COMPACT_MIN):
            self._events_compacted += queue.compact()

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + int(delay), callback, *args)

    def schedule_at(self, time: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute time (ns)."""
        time = int(time)
        if time < self._now:
            raise SimError(f"cannot schedule at t={time} < now={self._now}")
        if self._pool:
            event = self._pool.pop()
            event.time = time
            event.seq = next(self._seq)
            event.callback = callback
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, next(self._seq), callback, args)
        event.owner = self
        self._queue.push(event)
        if len(self._queue) > self._heap_high_watermark:
            self._heap_high_watermark = len(self._queue)
        return event

    def _recycle(self, event: Event) -> None:
        """Pool a dispatched event for reuse — only when no caller still
        holds the handle (the ``cancel()``-after-fire contract would
        otherwise let an old handle cancel an unrelated future event).
        Refcount 3 == the pop-site local + this argument + getrefcount's
        own frame: nothing external."""
        if len(self._pool) < self.POOL_CAP and sys.getrefcount(event) <= 3:
            event.callback = None
            event.args = ()
            self._pool.append(event)

    # -- dispatch -------------------------------------------------------------

    def peek(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        return self._queue.peek_time()

    def step(self) -> bool:
        """Dispatch the next event.  Returns False when nothing is pending."""
        event = self._queue.pop()
        if event is None:
            return False
        event.owner = None
        self._now = event.time
        self._events_processed += 1
        callback, args = event.callback, event.args
        self._recycle(event)
        del event
        callback(*args)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Args:
            until: stop once simulation time would exceed this (ns); the
                clock is advanced to ``until`` on return.
            max_events: hard cap on dispatched events (runaway guard).

        Returns:
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimError("run() is not reentrant")
        self._running = True
        dispatched = 0
        wall_start = time.perf_counter()
        try:
            while True:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and dispatched >= max_events:
                    break
                self.step()
                dispatched += 1
        finally:
            self._running = False
            self._wall_seconds += time.perf_counter() - wall_start
        if until is not None and self._now < until:
            self._now = int(until)
        return self._now

    def jump_to(self, time: int) -> None:
        """Advance the idle clock without dispatching (snapshot restore:
        materializing a simulation mid-run needs ``now`` at the capture
        time before components re-arm their timers)."""
        time = int(time)
        if time < self._now:
            raise SimError(f"cannot jump to t={time} < now={self._now}")
        next_time = self.peek()
        if next_time is not None and next_time < time:
            raise SimError(
                f"cannot jump past pending event at t={next_time}")
        self._now = time

    def clear(self) -> None:
        """Drop all pending events and reset per-run accounting (the
        clock is left where it is) — a reused simulator reports stats
        for its current run, not its lifetime.  Pooled events are
        dropped too, so the pool cannot carry handles across runs."""
        self._queue.clear()
        self._pool.clear()
        self._events_processed = 0
        self._events_cancelled = 0
        self._events_compacted = 0
        self._heap_high_watermark = 0
        self._wall_seconds = 0.0
