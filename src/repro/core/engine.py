"""Discrete-event simulation kernel.

The whole reproduction runs on a single-threaded event loop with integer
nanosecond timestamps.  Integer time keeps event ordering exact (no float
round-off when two packets are scheduled back-to-back at 100G) and makes
experiments reproducible bit-for-bit given a seed.

Typical usage::

    sim = Simulator()
    sim.schedule(1000, lambda: print("1 microsecond in"))
    sim.run(until=1_000_000)
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Event", "Simulator", "SimError"]


class SimError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and can be cancelled with
    :meth:`cancel` before they fire.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[..., Any], args: Tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Ties break on insertion order so same-time events fire FIFO.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, {getattr(self.callback, '__name__', self.callback)}, {state})"


class Simulator:
    """Single-threaded discrete-event simulator with integer-ns time."""

    def __init__(self, obs=None) -> None:
        self._now: int = 0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._heap_high_watermark = 0
        self._wall_seconds = 0.0
        self.obs = obs
        if obs is not None:
            obs.registry.register_provider("engine", self.obs_snapshot)
            # obs v2: lets the flight recorder install its sampling tick
            # (duck-typed so bare registry+tracer stand-ins keep working).
            attach = getattr(obs, "attach_engine", None)
            if attach is not None:
                attach(self)

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far (for overhead accounting)."""
        return self._events_processed

    @property
    def heap_high_watermark(self) -> int:
        """Largest number of pending events ever held at once."""
        return self._heap_high_watermark

    @property
    def wall_seconds(self) -> float:
        """Host wall-clock time spent inside :meth:`run` so far."""
        return self._wall_seconds

    def obs_snapshot(self) -> dict:
        """Kernel self-measurement: the substrate for all perf claims."""
        sim_seconds = self._now / 1e9
        return {
            "events_processed": self._events_processed,
            "heap_high_watermark": self._heap_high_watermark,
            "heap_pending": len(self._heap),
            "sim_time_ns": self._now,
            "wall_seconds": self._wall_seconds,
            "wall_seconds_per_sim_second": (
                self._wall_seconds / sim_seconds if sim_seconds > 0 else 0.0
            ),
            "events_per_wall_second": (
                self._events_processed / self._wall_seconds
                if self._wall_seconds > 0 else 0.0
            ),
        }

    def schedule(self, delay: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + int(delay), callback, *args)

    def schedule_at(self, time: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute time (ns)."""
        time = int(time)
        if time < self._now:
            raise SimError(f"cannot schedule at t={time} < now={self._now}")
        event = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        if len(self._heap) > self._heap_high_watermark:
            self._heap_high_watermark = len(self._heap)
        return event

    def peek(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Dispatch the next event.  Returns False when nothing is pending."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Args:
            until: stop once simulation time would exceed this (ns); the
                clock is advanced to ``until`` on return.
            max_events: hard cap on dispatched events (runaway guard).

        Returns:
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimError("run() is not reentrant")
        self._running = True
        dispatched = 0
        wall_start = time.perf_counter()
        try:
            while True:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and dispatched >= max_events:
                    break
                self.step()
                dispatched += 1
        finally:
            self._running = False
            self._wall_seconds += time.perf_counter() - wall_start
        if until is not None and self._now < until:
            self._now = int(until)
        return self._now

    def clear(self) -> None:
        """Drop all pending events (the clock is left where it is)."""
        self._heap.clear()
