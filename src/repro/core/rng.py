"""Seeded random-number streams.

Every stochastic component (loss process, workload generator, corruption
trace) draws from its own named stream derived from one root seed, so
adding a new consumer never perturbs the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory"]


class RngFactory:
    """Derives independent ``numpy.random.Generator`` streams from one seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def stream(self, name: str) -> np.random.Generator:
        """Return a generator unique to ``(seed, name)`` and stable across runs."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "little")
        return np.random.default_rng(child_seed)
