"""Seeded random-number streams.

Every stochastic component (loss process, workload generator, corruption
trace) draws from its own named stream derived from one root seed, so
adding a new consumer never perturbs the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory"]


class RngFactory:
    """Derives independent ``numpy.random.Generator`` streams from one seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def child_seed(self, name: str) -> int:
        """An integer seed unique to ``(seed, name)`` and stable across runs.

        The same derivation backs :meth:`stream`; exposing the integer lets
        callers that need a plain seed (experiment cells dispatched to worker
        processes, nested factories) share the one naming scheme.
        """
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str) -> np.random.Generator:
        """Return a generator unique to ``(seed, name)`` and stable across runs."""
        return np.random.default_rng(self.child_seed(name))

    def spawn(self, name: str) -> "RngFactory":
        """A child factory whose streams are independent of the parent's."""
        return RngFactory(self.child_seed(name))
