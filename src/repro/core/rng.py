"""Seeded random-number streams.

Every stochastic component (loss process, workload generator, corruption
trace) draws from its own named stream derived from one root seed, so
adding a new consumer never perturbs the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory"]


class RngFactory:
    """Derives independent ``numpy.random.Generator`` streams from one seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def child_seed(self, name: str, index: int = None) -> int:
        """An integer seed unique to ``(seed, name[, index])``, stable across runs.

        The same derivation backs :meth:`stream`; exposing the integer lets
        callers that need a plain seed (experiment cells dispatched to worker
        processes, nested factories) share the one naming scheme.

        ``index`` addresses one element of a sequence under the name — a
        link's k-th failure event, a trace's k-th repair draw — so the
        draws at index k never depend on how many values earlier indices
        consumed.  A trace truncated or extended in time therefore
        regenerates every surviving event byte-identically.
        """
        key = (f"{self.seed}:{name}" if index is None
               else f"{self.seed}:{name}#{int(index)}")
        digest = hashlib.sha256(key.encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str, index: int = None) -> np.random.Generator:
        """Return a generator unique to ``(seed, name[, index])``, stable
        across runs.  See :meth:`child_seed` for ``index`` semantics."""
        return np.random.default_rng(self.child_seed(name, index))

    def spawn(self, name: str) -> "RngFactory":
        """A child factory whose streams are independent of the parent's."""
        return RngFactory(self.child_seed(name))
