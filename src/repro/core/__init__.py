"""Discrete-event simulation kernel and seeded randomness."""

from .engine import Event, SimError, Simulator
from .rng import RngFactory

__all__ = ["Event", "SimError", "Simulator", "RngFactory"]
