"""LinkGuardian (SIGCOMM 2023) reproduction.

A discrete-event-simulation reproduction of "Masking Corruption Packet
Losses in Datacenter Networks with Link-local Retransmission" by Joshi
et al., including the LinkGuardian protocol (ordered and non-blocking),
the switch/link/PHY substrates it runs on, the transports it is
evaluated with, and the CorrOpt-based large-scale deployment study.
"""

from .core.engine import Simulator
from .core.rng import RngFactory
from .linkguardian.config import LinkGuardianConfig, retx_copies
from .linkguardian.protocol import ProtectedLink

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "RngFactory",
    "LinkGuardianConfig",
    "ProtectedLink",
    "retx_copies",
]
