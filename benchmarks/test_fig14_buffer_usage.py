"""Figure 14: LinkGuardian's packet-buffer usage.

Paper claims: at 25G the TX buffer stays within a few KB (~2 MTU) and
the RX (reordering) buffer within ~60 KB; at 100G both stay under
~90 KB; LG_NB needs no RX buffer and (at 100G) ~3x less TX buffer.
Negligible against the 16-42 MB of buffer in datacenter switches.
"""

from _report import emit, header, save_json, table

from repro.experiments.stress import run_stress_test

DURATION_MS = {25: 6.0, 100: 3.0}


def _run():
    rows = []
    for rate_gbps in (25, 100):
        for loss in (1e-5, 1e-4, 1e-3):
            for ordered in (True, False):
                rows.append(run_stress_test(
                    rate_gbps=rate_gbps, loss_rate=loss, ordered=ordered,
                    duration_ms=DURATION_MS[rate_gbps], seed=16,
                ))
    return rows


def test_fig14_buffer_usage(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 14 — TX/RX buffer usage (time-weighted, line-rate stress)")
    printable = []
    for r in rows:
        printable.append({
            "link": f"{r.rate_gbps:g}G",
            "loss": r.loss_rate,
            "mode": "LG" if r.ordered else "LG_NB",
            "tx_p50_KB": r.tx_buffer["p50"] / 1e3,
            "tx_max_KB": r.tx_buffer["max"] / 1e3,
            "rx_p50_KB": r.rx_buffer["p50"] / 1e3,
            "rx_max_KB": r.rx_buffer["max"] / 1e3,
        })
    table(printable)
    save_json("fig14_buffer_usage", printable)

    for r in rows:
        # Everything fits in a tiny corner of a datacenter switch buffer.
        assert r.tx_buffer["max"] < 200_000
        assert r.rx_buffer["max"] < 200_000
        if not r.ordered:
            assert r.rx_buffer["max"] == 0  # NB mode never buffers

    def max_tx(rate, ordered):
        return max(
            r.tx_buffer["max"] for r in rows
            if r.rate_gbps == rate and r.ordered == ordered
        )

    # Ordered LG's backpressure can delay ACKs -> larger TX buffer than NB.
    emit(f"\n100G max TX: LG {max_tx(100, True) / 1e3:.1f} KB vs "
         f"LG_NB {max_tx(100, False) / 1e3:.1f} KB "
         f"(paper: 90 KB vs 24.4 KB)")
    assert max_tx(100, True) >= max_tx(100, False)
