"""Figure 8: effective loss rate and effective link speed, LG vs LG_NB.

Paper claims at 25G/100G x {1e-5, 1e-4, 1e-3}:
* effective loss rates match the analytic expectation p**(N+1)
  (N from Equation 2: 1, 1, 2 copies respectively);
* LG_NB keeps a higher effective link speed than ordered LG, and the
  gap grows with loss rate and link speed.

A Python simulator cannot observe 1e-9 rates directly (the paper needed
31M loss events); the measured column is therefore zero-inflated at low
rates and the mechanism is validated at an inflated 5% loss rate where
all-copies-lost events actually occur.
"""

import pytest

from _report import emit, header, save_json, table

from repro.experiments.stress import run_stress_test
from repro.linkguardian.config import expected_effective_loss, retx_copies

DURATION_MS = {25: 6.0, 100: 3.0}


def _run_grid():
    rows = []
    for rate_gbps in (25, 100):
        for loss in (1e-5, 1e-4, 1e-3):
            for ordered in (True, False):
                result = run_stress_test(
                    rate_gbps=rate_gbps, loss_rate=loss, ordered=ordered,
                    duration_ms=DURATION_MS[rate_gbps], seed=8,
                )
                rows.append(result)
    return rows


def _run_validation():
    """Inflated 5% loss with N=1: effective loss must be ~0.25%."""
    return run_stress_test(
        rate_gbps=100, loss_rate=0.05, ordered=True, duration_ms=6.0,
        n_copies_override=1, seed=9,
    )


def test_fig08_effective_loss_and_speed(benchmark):
    rows = benchmark.pedantic(_run_grid, rounds=1, iterations=1)
    header("Figure 8 — effective loss rate & effective link speed")
    table([r.row() for r in rows])
    save_json("fig08_effective_loss", [r.row() for r in rows])

    # Equation 2 sizing as in the paper: 1, 1, 2 copies.
    assert retx_copies(1e-5) == 1 and retx_copies(1e-4) == 1 and retx_copies(1e-3) == 2

    for r in rows:
        # Every expected-loss cell is at or below the 1e-8 target.
        assert r.effective_loss_expected <= 1e-8 * 1.01
        # Virtually every loss is recovered at production rates.
        assert r.recovered >= 0.99 * r.loss_events or r.loss_events < 5
        # Effective speed stays above 90% (paper's worst cell is 92%).
        assert r.effective_link_speed_fraction > 0.90

    # NB scales better: compare ordered vs NB at the worst cell.
    def cell(rate, loss, ordered):
        return next(
            r for r in rows
            if r.rate_gbps == rate and r.loss_rate == loss and r.ordered == ordered
        )

    worst_lg = cell(100, 1e-3, True)
    worst_nb = cell(100, 1e-3, False)
    assert worst_nb.effective_link_speed_fraction >= worst_lg.effective_link_speed_fraction
    assert worst_nb.rx_buffer["max"] == 0  # NB needs no receive buffering

    emit("\nvalidation at inflated 5% loss (N forced to 1):")
    check = _run_validation()
    expected = expected_effective_loss(0.05, 1)
    emit(f"  measured effective loss {check.effective_loss_measured:.2e} "
         f"vs expected {expected:.2e}")
    assert check.effective_loss_measured == pytest.approx(expected, rel=0.5)
