"""Fastpath scaling: cells/sec of the analytic backend vs the packet engine.

The acceptance bar for the fastpath subsystem: on a >= 1000-cell grid the
vectorized backend clears >= 100x the packet engine's cells/sec.  The
packet rate is measured on a small sample of the same grid (running all
1000 cells through the engine is exactly what fastpath exists to avoid);
the fastpath rate is measured on the full grid through the SweepRunner
batch path, so the number includes spec grouping and result packing, not
just the NumPy kernel.
"""

import time

from _report import emit, header, save_json, table

from repro.runner import ExperimentSpec, SweepRunner, SweepSpec
from repro.runner.cells import run_cell

SPEEDUP_FLOOR = 100.0
PACKET_SAMPLE = 8

SWEEP = SweepSpec(
    name="fastpath-scaling",
    base=ExperimentSpec(kind="fct", flow_size=1460, n_trials=150,
                        loss_rate=1e-3, backend="fastpath"),
    axes={
        "transport": ["dctcp", "rdma"],
        "scenario": ["noloss", "loss", "lg", "lgnb"],
        "flow_size": [1, 143, 1460, 14600, 24387],
        "loss_rate": [1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 3e-3, 5e-3,
                      7e-3, 1e-2, 1.5e-2, 2e-2, 2.5e-2, 3e-2],
        "rate_gbps": [25.0, 100.0],
    },
    seed=13,
)


def test_fastpath_100x_cells_per_sec(benchmark):
    cells = SWEEP.cells()
    assert len(cells) >= 1000, f"grid has only {len(cells)} cells"

    def _run():
        t0 = time.perf_counter()
        results = SweepRunner(SWEEP).run()
        t_fast = time.perf_counter() - t0

        sample = cells[:: max(1, len(cells) // PACKET_SAMPLE)][:PACKET_SAMPLE]
        t0 = time.perf_counter()
        for spec in sample:
            run_cell(spec.with_(backend="packet"))
        t_packet = time.perf_counter() - t0
        return results, t_fast, len(sample), t_packet

    results, t_fast, n_sample, t_packet = benchmark.pedantic(
        _run, rounds=1, iterations=1)

    fast_rate = len(results) / t_fast
    packet_rate = n_sample / t_packet
    speedup = fast_rate / packet_rate

    header(f"Fastpath scaling — {len(results)} cells "
           f"(packet sampled on {n_sample})")
    rows = [
        {"backend": "fastpath", "cells": len(results),
         "wall_s": round(t_fast, 4), "cells_per_s": round(fast_rate, 1)},
        {"backend": "packet", "cells": n_sample,
         "wall_s": round(t_packet, 4), "cells_per_s": round(packet_rate, 1)},
    ]
    table(rows, ["backend", "cells", "wall_s", "cells_per_s"])
    emit(f"speedup {speedup:.0f}x (floor {SPEEDUP_FLOOR:.0f}x)")
    save_json("fastpath_scaling", {
        "n_cells": len(results),
        "packet_sample": n_sample,
        "fastpath_wall_s": t_fast,
        "packet_wall_s": t_packet,
        "fastpath_cells_per_s": fast_rate,
        "packet_cells_per_s": packet_rate,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
    })

    assert all(r.backend == "fastpath" for r in results)
    assert speedup >= SPEEDUP_FLOOR, (
        f"fastpath only {speedup:.1f}x the packet engine "
        f"({fast_rate:.0f} vs {packet_rate:.1f} cells/s)")
