"""Table 3: TCP CUBIC goodput on a 10G link — LinkGuardian vs Wharf.

Paper's rows (Gb/s): None 9.49/9.48/8.01/3.48/1.46; Wharf n/a 9.13 9.13
9.13 7.91; LinkGuardian(NB) ~9.47 at every loss rate, 9.2 at 1e-2.

Shape claims asserted: Wharf pays its FEC tax (code rate) at *every*
loss rate, LinkGuardian's overhead is proportional to the loss rate and
negligible, and the unprotected link collapses at high loss.  (Our
ideal-SACK TCP degrades later than the paper's kernel TCP — at 1e-2
rather than 1e-4; see EXPERIMENTS.md.)
"""

from _report import emit, header, save_json, table

from repro.experiments.goodput import run_goodput

LOSS_RATES = (0.0, 1e-5, 1e-4, 1e-3, 1e-2)
SCHEMES = ("none", "wharf", "lg", "lgnb")


def _run():
    rows = []
    for loss in LOSS_RATES:
        row = {"loss": loss}
        for scheme in SCHEMES:
            if scheme == "wharf" and loss == 0.0:
                row[scheme] = None  # n/a, as in the paper
                continue
            # Longer transfers at heavy loss so the goodput reflects the
            # steady AIMD sawtooth rather than a couple of loss events.
            transfer = 4_000_000 if loss >= 1e-2 else 1_500_000
            result = run_goodput(
                scheme, loss_rate=loss, transfer_bytes=transfer,
                deadline_ms=2_000, seed=17,
            )
            row[scheme] = round(result["goodput_gbps"], 2)
        rows.append(row)
    return rows


def test_tab03_wharf_goodput(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Table 3 — CUBIC goodput (Gb/s) on a 10G link")
    table([{**r, "wharf": r["wharf"] if r["wharf"] is not None else "n/a"}
           for r in rows])
    save_json("tab03_wharf", rows)

    by_loss = {r["loss"]: r for r in rows}
    # Wharf's constant FEC tax: ~4% below LG at low loss, worse at 1e-2.
    for loss in (1e-5, 1e-4, 1e-3):
        assert by_loss[loss]["wharf"] < by_loss[loss]["lg"]
        assert by_loss[loss]["wharf"] > 8.0   # but still functional
    assert by_loss[1e-2]["wharf"] < by_loss[1e-3]["wharf"]  # heavier code
    # LinkGuardian stays near the clean goodput at every loss rate.
    clean = by_loss[0.0]["lg"]
    for loss in LOSS_RATES:
        assert by_loss[loss]["lg"] > 0.9 * clean
    # The unprotected link degrades at heavy loss; LG does not.  (Our
    # ideal-SACK TCP degrades far less than the paper's kernel TCP —
    # 1.46 vs 9.2 Gb/s there — so the assertion is on the ordering and
    # a visible gap, not the paper's collapse factor.)
    assert by_loss[1e-2]["none"] < 0.95 * by_loss[1e-2]["lg"]
    assert by_loss[1e-2]["none"] < by_loss[1e-3]["none"] * 1.02  # monotone-ish
    emit("\nshape: LG ~ clean everywhere; Wharf pays its constant tax; "
         "None collapses under heavy loss")
