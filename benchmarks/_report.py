"""Shared reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures at
simulator scale, prints the same rows/series the paper reports, and
saves the raw numbers under ``benchmarks/results/`` so EXPERIMENTS.md
can reference them.
"""

from __future__ import annotations

import json
import os
import sys
from typing import List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(text: str = "") -> None:
    """Print to the real terminal even under pytest capture."""
    sys.stderr.write(text + "\n")
    sys.stderr.flush()


def header(title: str) -> None:
    emit()
    emit("=" * 78)
    emit(title)
    emit("=" * 78)


def table(rows: Sequence[dict], columns: Sequence[str] = None) -> None:
    """Render dict-rows as an aligned text table."""
    if not rows:
        emit("(no rows)")
        return
    if columns is None:
        columns = list(rows[0].keys())
    formatted: List[List[str]] = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in formatted))
        for i, col in enumerate(columns)
    ]
    emit("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    emit("  ".join("-" * w for w in widths))
    for line in formatted:
        emit("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e6:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def save_json(name: str, payload) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=_jsonable)
    return path


def _jsonable(obj):
    import numpy as np

    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    return str(obj)
