"""Figure 21: CUBIC (25G) and BBR (10G) timelines with 1e-3 loss.

Paper claims: loss-based CUBIC collapses under corruption and recovers
once LinkGuardian is enabled; loss-agnostic BBR suffers only minimal
degradation but still improves slightly with LinkGuardian.  Together
with Figure 9 this shows LinkGuardian works under ECN-based, loss-based
and rate-based congestion control.
"""

from _report import emit, header, save_json, table

from repro.experiments.timeline import run_timeline

PHASES = dict(clean_ms=6.0, loss_ms=14.0, lg_ms=14.0, sample_interval_ns=500_000)


def _run():
    cubic = run_timeline("cubic", rate_gbps=25, loss_rate=1e-3, **PHASES)
    bbr = run_timeline("bbr", rate_gbps=10, loss_rate=1e-3, **PHASES)
    return cubic, bbr


def test_fig21_cubic_and_bbr_timelines(benchmark):
    cubic, bbr = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 21 — CUBIC (25G) and BBR (10G) timelines, loss 1e-3")
    rows = []
    for result in (cubic, bbr):
        rows.append({
            "transport": result.transport,
            "link": f"{result.rate_gbps:g}G",
            "clean_Gbps": round(result.phase_mean_rate(2, result.corruption_start_ms), 2),
            "loss_Gbps": round(result.phase_mean_rate(
                result.corruption_start_ms + 2, result.lg_start_ms), 2),
            "lg_Gbps": round(result.phase_mean_rate(
                result.lg_start_ms + 4, result.times_ms[-1]), 2),
            "e2e_retx": int(result.e2e_retx[-1]),
        })
    table(rows)
    save_json("fig21_cubic_bbr", rows)

    cubic_row, bbr_row = rows
    # CUBIC: loss dents throughput; LG restores it.  (Ideal-SACK CUBIC
    # dips far less than the kernel CUBIC in Figure 21a — see
    # EXPERIMENTS.md [F1]; the dent and the recovery are what we assert.)
    assert cubic_row["loss_Gbps"] < cubic_row["clean_Gbps"] - 0.5
    assert cubic_row["lg_Gbps"] > cubic_row["loss_Gbps"]
    assert cubic_row["lg_Gbps"] > 0.9 * cubic_row["clean_Gbps"]
    assert cubic_row["e2e_retx"] > 0
    # BBR: mostly loss-agnostic — degradation under loss is small.
    assert bbr_row["loss_Gbps"] > 0.7 * bbr_row["clean_Gbps"]
    assert bbr_row["lg_Gbps"] >= bbr_row["loss_Gbps"] * 0.95
    emit("\nCUBIC dips and recovers with LG; BBR barely notices the "
         "loss (rate-based), as in Figures 21a/21b")
