"""Figure 19: distribution of the retransmission delay.

Time from the receiver detecting a loss to it receiving the
retransmission.  Paper claims: 2-6 us at 25G and 2-5.5 us at 100G,
dominated by the Tx-buffer recirculation loop; the ackNoTimeout values
(7.5/7 us) are chosen to sit above the maximum.
"""

import numpy as np

from _report import emit, header, save_json, table

from repro.experiments.stress import run_stress_test
from repro.linkguardian.config import LinkGuardianConfig


def _run():
    out = {}
    for rate_gbps in (25, 100):
        delays = []
        for loss in (1e-3, 5e-3):
            result = run_stress_test(
                rate_gbps=rate_gbps, loss_rate=loss, ordered=True,
                duration_ms=8.0, seed=19,
            )
            delays.extend(result.retx_delays_us)
        out[rate_gbps] = np.asarray(delays)
    return out


def test_fig19_retx_delay_cdf(benchmark):
    delays = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 19 — ReTx delay (loss detected -> retransmission received)")
    rows = []
    for rate_gbps, samples in delays.items():
        config = LinkGuardianConfig.for_link_speed(rate_gbps)
        rows.append({
            "link": f"{rate_gbps:g}G",
            "n": len(samples),
            "min_us": round(float(samples.min()), 2),
            "p50_us": round(float(np.median(samples)), 2),
            "p99_us": round(float(np.percentile(samples, 99)), 2),
            "max_us": round(float(samples.max()), 2),
            "ackNoTimeout_us": config.ack_no_timeout_ns / 1e3,
        })
    table(rows)
    save_json("fig19_retx_delay", {str(k): v for k, v in delays.items()})

    for rate_gbps, samples in delays.items():
        config = LinkGuardianConfig.for_link_speed(rate_gbps)
        assert len(samples) > 20
        # Sub-RTT recovery: every delay far below a ~30 us RTT.
        assert samples.max() < 8.0
        # The provisioned ackNoTimeout clears the observed maximum.
        assert samples.max() * 1e3 < config.ack_no_timeout_ns
        # Microsecond scale, dominated by the recirculation loop.
        assert np.median(samples) > 1.0
    emit("\ndelays sit in the paper's 2-6 us band, under the ackNoTimeout")
