"""§5 extensions: a Tofino2 implementation profile and 400G scaling.

Two of the paper's §5 theses, run as simulation ablations:

* **Tofino2** ("Implementing LinkGuardian with Tofino2"): retransmission
  without recirculation removes the dominant component of the 2-6 us
  ReTx delay, shrinking buffers and the ordered mode's pause cost;
* **Higher link speeds**: "LinkGuardianNB would work well for higher
  link speeds of 400G and above due to its lower overheads" — the
  ordered/NB effective-speed gap should widen with link speed.
"""

import numpy as np

from _report import emit, header, save_json, table

from repro.experiments.stress import run_stress_test
from repro.linkguardian.config import LinkGuardianConfig


def _run_tofino2():
    rows = {}
    for label, config in (
        ("tofino1", LinkGuardianConfig.for_link_speed(100)),
        ("tofino2", LinkGuardianConfig.tofino2(100)),
    ):
        rows[label] = run_stress_test(
            rate_gbps=100, loss_rate=1e-3, ordered=True, duration_ms=4.0,
            config=config, seed=27,
        )
    return rows


def _run_400g():
    rows = {}
    # Ordered LG with a single 100G recirculation port: the reordering
    # buffer drains slower than the link and every recovery degenerates
    # into a pause/resume oscillation pinned at the drain rate — a
    # concrete mechanism behind §5's "proportionally lower effective
    # link speed" caveat.
    rows["LG/100G-recirc"] = run_stress_test(
        rate_gbps=400, loss_rate=1e-3, ordered=True, duration_ms=1.5,
        config=LinkGuardianConfig.for_link_speed(400, ordered=True),
        seed=28, recirc_drain_gbps=100,
    )
    for label, ordered in (("LG/400G-recirc", True), ("LG_NB", False)):
        rows[label] = run_stress_test(
            rate_gbps=400, loss_rate=1e-3, ordered=ordered, duration_ms=1.5,
            config=LinkGuardianConfig.for_link_speed(400, ordered=ordered),
            seed=28, recirc_drain_gbps=400,
        )
    return rows


def test_sec5_tofino2_profile(benchmark):
    rows = benchmark.pedantic(_run_tofino2, rounds=1, iterations=1)
    header("§5 — Tofino1 (recirculation) vs Tofino2 (no recirculation)")
    printable = []
    for label, r in rows.items():
        delays = np.asarray(r.retx_delays_us)
        printable.append({
            "impl": label,
            "retx_p50_us": round(float(np.median(delays)), 2) if len(delays) else None,
            "retx_max_us": round(float(delays.max()), 2) if len(delays) else None,
            "eff_speed_%": round(100 * r.effective_link_speed_fraction, 2),
            "rx_buf_max_KB": round(r.rx_buffer["max"] / 1e3, 1),
            "pauses": r.pauses,
        })
    table(printable)
    save_json("sec5_tofino2", printable)

    t1, t2 = rows["tofino1"], rows["tofino2"]
    d1 = np.median(t1.retx_delays_us)
    d2 = np.median(t2.retx_delays_us)
    # No recirculation -> markedly faster recovery, smaller buffers.
    # (The remaining floor is the notification path: serialization,
    # propagation and two pipeline passes.)
    assert d2 < d1 * 0.7
    assert t2.rx_buffer["max"] <= t1.rx_buffer["max"]
    assert t2.effective_link_speed_fraction >= t1.effective_link_speed_fraction - 0.002
    assert t2.timeouts == 0
    emit("\nTofino2-style retransmission recovers several times faster and "
         "buffers less — the §5 thesis holds in simulation")


def test_sec5_400g_scaling(benchmark):
    rows = benchmark.pedantic(_run_400g, rounds=1, iterations=1)
    header("§5 — 400G scaling: ordered LG vs LG_NB at 1e-3 loss")
    printable = [{
        "mode": label,
        "eff_speed_%": round(100 * r.effective_link_speed_fraction, 2),
        "recovered": r.recovered,
        "loss_events": r.loss_events,
        "timeouts": r.timeouts,
        "rx_buf_max_KB": round(r.rx_buffer["max"] / 1e3, 1),
    } for label, r in rows.items()]
    table(printable)
    save_json("sec5_400g", printable)

    starved = rows["LG/100G-recirc"]
    lg = rows["LG/400G-recirc"]
    nb = rows["LG_NB"]
    # With a single 100G recirc port, the ordered mode's throughput pins
    # near the drain rate (100/400 = 25%) under recovery oscillation.
    assert starved.effective_link_speed_fraction < 0.5
    # With a full-rate reordering-buffer drain both modes recover all.
    assert lg.recovered == lg.loss_events
    assert nb.recovered == nb.loss_events
    # The ordered mode pays a visible pause cost at 400G (the paper saw
    # 8% at 100G; the cost scales with losses/second x recovery delay).
    assert lg.effective_link_speed_fraction > 0.85
    # NB keeps at least ordered LG's effective speed with zero Rx buffer.
    assert nb.effective_link_speed_fraction >= lg.effective_link_speed_fraction - 0.001
    assert nb.rx_buffer["max"] == 0
    emit("\nLG_NB scales to 400G untouched; ordered LG needs the "
         "reordering-buffer drain to scale with the link (§5)")
