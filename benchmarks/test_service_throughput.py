"""Control-plane what-if throughput: cold dispatch vs cached answers.

The service's operating claim (ROADMAP item, PR-9): an operator tool
can fan 50+ concurrent what-if queries at ``repro serve`` and the LRU
over canonical cell-grid keys absorbs the repeat traffic — a cached
answer must be >= 100x faster than a cold fastpath dispatch.  This
benchmark measures both ends on one in-process service instance (inline
executor: no worker-pool or socket noise in the cold number, which
makes the ratio a *lower* bound on the deployed speedup) and checks the
numbers into ``benchmarks/results/service_throughput.json``.
"""

import asyncio
import json
import time

from _report import emit, header, save_json, table

from repro.fleet.topology import FleetSpec
from repro.service import ControlPlaneService, ServiceConfig
from repro.service.http import request

FLEET = FleetSpec(n_pods=2, tors_per_pod=4, fabrics_per_pod=2,
                  spine_uplinks=4, mttf_hours=300.0)
#: distinct grid cells probed (loss rates x flow sizes)
RATES = [5e-4, 1e-3, 2e-3, 5e-3, 1e-2]
FLOWS = [143, 24_387]
CONCURRENCY = 64


async def _drive() -> dict:
    config = ServiceConfig(port=0, fleet=FLEET, telemetry="none",
                           executor="inline", backend="fastpath",
                           queue_limit=CONCURRENCY, max_inflight=4,
                           cache_size=256)
    service = ControlPlaneService(config)
    await service.start()
    try:
        bodies = [{"loss_rate": rate, "flow_size": flow,
                   "kind": "fct", "n_trials": 400}
                  for rate in RATES for flow in FLOWS]

        async def ask(body):
            status, _, raw = await request("127.0.0.1", service.port,
                                           "POST", "/whatif", body)
            assert status == 200, raw.decode()[:200]
            return json.loads(raw)

        # Phase 1 — cold: every distinct cell dispatched once.
        t0 = time.perf_counter()
        cold = [await ask(body) for body in bodies]
        cold_elapsed = time.perf_counter() - t0
        assert all(not r["cached"] for r in cold)

        # Phase 2 — cached: CONCURRENCY concurrent queries over the
        # same cells, all absorbed by the LRU.
        t0 = time.perf_counter()
        hot = await asyncio.gather(
            *(ask(bodies[i % len(bodies)]) for i in range(CONCURRENCY)))
        hot_elapsed = time.perf_counter() - t0
        assert all(r["cached"] for r in hot)

        cold_walls = sorted(r["dispatch_wall_s"] for r in cold)
        hit_walls = sorted(r["wall_s"] for r in hot)
        return {
            "cells": len(bodies),
            "concurrency": CONCURRENCY,
            "cold_qps": len(cold) / cold_elapsed,
            "cached_qps": len(hot) / hot_elapsed,
            "cold_dispatch_median_s": cold_walls[len(cold_walls) // 2],
            "cold_dispatch_min_s": cold_walls[0],
            "cache_hit_median_s": hit_walls[len(hit_walls) // 2],
            "cache_hit_p99_s": hit_walls[int(len(hit_walls) * 0.99)],
            "cache_stats": service.cache.stats(),
        }
    finally:
        await service.begin_drain()


def test_cached_whatif_100x_faster_than_cold(benchmark):
    results = benchmark.pedantic(lambda: asyncio.run(_drive()),
                                 rounds=1, iterations=1)
    speedup = (results["cold_dispatch_min_s"]
               / results["cache_hit_median_s"])
    results["speedup_min_cold_over_median_hit"] = speedup

    header(f"Service what-if throughput — {results['cells']} cells, "
           f"{results['concurrency']} concurrent cached queries")
    table([{
        "cold qps": results["cold_qps"],
        "cached qps": results["cached_qps"],
        "cold median (s)": results["cold_dispatch_median_s"],
        "hit median (s)": results["cache_hit_median_s"],
        "speedup": f"{speedup:.0f}x",
    }])
    path = save_json("service_throughput", results)
    emit(f"results saved to {path}")

    assert results["cache_stats"]["hits"] >= CONCURRENCY
    assert speedup >= 100.0, (
        f"cached answers only {speedup:.1f}x faster than cold dispatch")
    assert results["cached_qps"] > results["cold_qps"]
