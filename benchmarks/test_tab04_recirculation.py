"""Table 4: recirculation overhead as % of switch-pipe capacity.

Paper claims: under worst-case line-rate traffic, LinkGuardian's
recirculation (TX buffer loops at the sender, reordering-buffer loops
at the receiver) consumes <1% of the pipeline's processing capacity at
every loss rate and link speed; LG_NB has zero receiver recirculation.
"""

from _report import emit, header, save_json, table

from repro.experiments.stress import run_stress_test


def _run():
    rows = []
    for rate_gbps in (25, 100):
        for loss in (1e-5, 1e-4, 1e-3):
            ordered = run_stress_test(
                rate_gbps=rate_gbps, loss_rate=loss, ordered=True,
                duration_ms=3.0, seed=18,
            )
            nb = run_stress_test(
                rate_gbps=rate_gbps, loss_rate=loss, ordered=False,
                duration_ms=3.0, seed=18,
            )
            rows.append({
                "link": f"{rate_gbps:g}G",
                "loss": loss,
                "tx_overhead_%": round(ordered.recirc_overhead_tx_percent, 4),
                "rx_overhead_%": round(ordered.recirc_overhead_rx_percent, 4),
                "nb_rx_overhead_%": round(nb.recirc_overhead_rx_percent, 4),
            })
    return rows


def test_tab04_recirculation_overhead(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Table 4 — recirculation overhead (% of pipe forwarding capacity)")
    table(rows)
    save_json("tab04_recirculation", rows)

    for row in rows:
        # The paper's headline: always below 1% of pipeline capacity.
        assert row["tx_overhead_%"] < 1.0
        assert row["rx_overhead_%"] < 1.0
        # LG_NB performs no receiver-side recirculation at all.
        assert row["nb_rx_overhead_%"] == 0.0
    emit("\nall cells < 1% of pipeline capacity, as in the paper")
