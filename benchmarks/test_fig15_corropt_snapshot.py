"""Figure 15: one-week snapshot of the deployment simulation.

Paper claims (FB fabric, year-long simulation, 50%/75% capacity
constraints): when the capacity constraint is hit, vanilla CorrOpt
cannot disable further corrupting links and the total penalty stays
high; LinkGuardian+CorrOpt keeps the penalty orders of magnitude lower
at a sub-percent cost in least per-pod capacity; the least-paths-per-ToR
metric never violates the constraint.
"""

import numpy as np

from _report import emit, header, save_json, table

from repro.experiments.deployment import run_deployment_comparison

# Reduced fabric (structure preserved: 4 fabric switches per pod), with
# accelerated aging so constraint-hits occur within the window.
FABRIC = dict(n_pods=8, tors_per_pod=16, fabrics_per_pod=4, spine_uplinks=16)
DURATION_DAYS = 120.0
MTTF_HOURS = 1_500.0


def _run():
    return {
        constraint: run_deployment_comparison(
            capacity_constraint=constraint, duration_days=DURATION_DAYS,
            mttf_hours=MTTF_HOURS, seed=23, **FABRIC,
        )
        for constraint in (0.50, 0.75)
    }


def test_fig15_deployment_snapshot(benchmark):
    comparisons = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 15 — deployment snapshot (week starting day 30)")
    rows = []
    for constraint, comparison in comparisons.items():
        snap = comparison.week_snapshot(start_day=30.0)
        rows.append({
            "constraint": f"{constraint:.0%}",
            "penalty(CorrOpt)": float(np.mean(snap["vanilla_penalty"])),
            "penalty(+LG)": float(np.mean(snap["combined_penalty"])),
            "least_paths(CorrOpt)": float(np.min(snap["vanilla_least_paths"])),
            "least_cap(CorrOpt)": float(np.min(snap["vanilla_least_capacity"])),
            "least_cap(+LG)": float(np.min(snap["combined_least_capacity"])),
        })
    table(rows)
    save_json("fig15_corropt_snapshot", rows)

    for constraint, comparison in comparisons.items():
        # The checker never lets the constraint be violated.
        assert comparison.vanilla.least_paths_fraction.min() >= constraint - 1e-9
        assert comparison.combined.least_paths_fraction.min() >= constraint - 1e-9
        # The combined policy's mean penalty is orders of magnitude lower.
        vanilla_mean = comparison.vanilla.total_penalty.mean()
        combined_mean = comparison.combined.total_penalty.mean()
        if vanilla_mean > 0:
            emit(f"constraint {constraint:.0%}: mean penalty reduction "
                 f"{vanilla_mean / max(combined_mean, 1e-15):.1e}x "
                 f"(paper: 1e4-1e6x)")
            assert combined_mean < vanilla_mean / 100
        # The capacity cost of running LG links at reduced speed is tiny.
        cap_cost = (comparison.vanilla.least_capacity_fraction.mean()
                    - comparison.combined.least_capacity_fraction.mean())
        assert abs(cap_cost) < 0.03
