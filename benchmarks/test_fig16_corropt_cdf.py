"""Figure 16: CDFs of (a) the gain in total penalty and (b) the decrease
in least per-pod capacity, LinkGuardian+CorrOpt vs vanilla CorrOpt.

Paper claims: at a 50% constraint, ~35% of the time all corrupting
links can be disabled and the gain is 1; the rest of the time (and
nearly always at 75%) the combined policy wins by up to orders of
magnitude, while the capacity cost stays within a fraction of a percent
for almost all samples.
"""

import numpy as np

from _report import emit, header, save_json, table

from repro.experiments.deployment import run_deployment_comparison

FABRIC = dict(n_pods=8, tors_per_pod=16, fabrics_per_pod=4, spine_uplinks=16)


def _run():
    return {
        constraint: run_deployment_comparison(
            capacity_constraint=constraint, duration_days=365.0,
            mttf_hours=2_000.0, seed=24, **FABRIC,
        )
        for constraint in (0.50, 0.75)
    }


def test_fig16_gain_and_cost_cdfs(benchmark):
    comparisons = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 16 — gain in total penalty & decrease in least capacity")
    rows = []
    for constraint, comparison in comparisons.items():
        gain = comparison.penalty_gain()
        decrease = comparison.capacity_decrease()
        rows.append({
            "constraint": f"{constraint:.0%}",
            "gain=1 (%time)": round(100 * float((gain <= 1.0 + 1e-9).mean()), 1),
            "gain_p50": float(np.median(gain)),
            "gain_p90": float(np.percentile(gain, 90)),
            "gain_max": float(gain.max()),
            "cap_decrease_p99_%": round(float(np.percentile(decrease, 99)), 3),
        })
    table(rows)
    save_json("fig16_corropt_cdf", rows)

    gain_50 = comparisons[0.50].penalty_gain()
    gain_75 = comparisons[0.75].penalty_gain()
    # Significant fraction of time the combined policy wins big.
    assert (gain_50 > 10).mean() > 0.2
    # The tighter 75% constraint blocks more disables -> gains more often.
    assert (gain_75 > 1.0 + 1e-9).mean() >= (gain_50 > 1.0 + 1e-9).mean() - 0.05
    # Capacity cost stays small for nearly all samples (paper Fig 16b).
    for comparison in comparisons.values():
        decrease = comparison.capacity_decrease()
        assert np.percentile(np.abs(decrease), 90) < 5.0
    emit("\nthe combined policy gains orders of magnitude in penalty for a "
         "sub-percent typical capacity cost")
