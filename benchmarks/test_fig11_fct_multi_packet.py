"""Figure 11: top-5% FCTs for 24,387 B (17-packet) flows on 100G.

Paper claims: LinkGuardian tracks the no-loss curve for DCTCP, BBR and
RDMA.  LinkGuardianNB performs nearly as well for the TCPs (reordering
is tolerated) but for RDMA it only removes the RTO tail — go-back-N has
no reordering window, so out-of-order recovery still costs a go-back.

The grid runs through the declarative runner layer (SweepSpec over
transports x scenarios).
"""

from _report import emit, header, save_json, table

from repro.runner import ExperimentSpec, SweepRunner, SweepSpec

TRIALS = 900
LOSS = 5e-3
SIZE = 24_387

SWEEP = SweepSpec(
    name="fig11",
    base=ExperimentSpec(kind="fct", flow_size=SIZE, n_trials=TRIALS,
                        loss_rate=LOSS, seed=12),
    axes={"transport": ["dctcp", "bbr", "rdma"],
          "scenario": ["noloss", "loss", "lg", "lgnb"]},
)


def _run():
    results = SweepRunner(SWEEP).run()
    return {(r.spec["transport"], r.spec["scenario"]): r for r in results}


def test_fig11_multi_packet_fct(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    header(f"Figure 11 — {SIZE} B flows on 100G ({TRIALS} trials, loss {LOSS:g})")
    table([r.metrics for r in results.values()])
    save_json("fig11_fct_multi_packet", {
        f"{t}-{s}": r.metrics for (t, s), r in results.items()
    })

    def pct(transport, scenario, q):
        return results[(transport, scenario)].metrics[f"p{q}_us"]

    for transport in ("dctcp", "bbr", "rdma"):
        clean99 = pct(transport, "noloss", 99)
        loss999 = pct(transport, "loss", "99.9")
        lg99, lg999 = pct(transport, "lg", 99), pct(transport, "lg", "99.9")
        nb999 = pct(transport, "lgnb", "99.9")
        emit(f"{transport}: p99.9 loss/lg = {loss999 / lg999:.1f}x, "
             f"lgnb/lg = {nb999 / lg999:.2f}x")
        # Ordered LG hugs the no-loss curve at the 99th percentile.
        assert lg99 < 1.5 * clean99
        # The unprotected tail is far worse than LG's.
        assert loss999 > 3 * lg999
        # NB also removes the RTO tail (no >=1ms FCTs from tail loss).
        assert nb999 < loss999

    # RDMA pays for reordering under NB: the NB p99 exceeds ordered-LG's
    # p99 by more than for the TCPs (go-back-N, Figure 11c).
    rdma_penalty = pct("rdma", "lgnb", 99) / pct("rdma", "lg", 99)
    dctcp_penalty = pct("dctcp", "lgnb", 99) / pct("dctcp", "lg", 99)
    emit(f"NB-vs-LG p99 penalty: rdma {rdma_penalty:.2f}x, dctcp {dctcp_penalty:.2f}x")
    assert rdma_penalty >= dctcp_penalty - 0.05
