"""Figure 11: top-5% FCTs for 24,387 B (17-packet) flows on 100G.

Paper claims: LinkGuardian tracks the no-loss curve for DCTCP, BBR and
RDMA.  LinkGuardianNB performs nearly as well for the TCPs (reordering
is tolerated) but for RDMA it only removes the RTO tail — go-back-N has
no reordering window, so out-of-order recovery still costs a go-back.
"""

from _report import emit, header, save_json, table

from repro.experiments.fct import run_fct_experiment

TRIALS = 900
LOSS = 5e-3
SIZE = 24_387


def _run():
    results = {}
    for transport in ("dctcp", "bbr", "rdma"):
        for scenario in ("noloss", "loss", "lg", "lgnb"):
            results[(transport, scenario)] = run_fct_experiment(
                transport=transport, flow_size=SIZE, n_trials=TRIALS,
                scenario=scenario, loss_rate=LOSS, seed=12,
            )
    return results


def test_fig11_multi_packet_fct(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    header(f"Figure 11 — {SIZE} B flows on 100G ({TRIALS} trials, loss {LOSS:g})")
    table([r.summary() for r in results.values()])
    save_json("fig11_fct_multi_packet", {
        f"{t}-{s}": r.summary() for (t, s), r in results.items()
    })

    for transport in ("dctcp", "bbr", "rdma"):
        clean = results[(transport, "noloss")]
        loss = results[(transport, "loss")]
        lg = results[(transport, "lg")]
        nb = results[(transport, "lgnb")]
        emit(f"{transport}: p99.9 loss/lg = {loss.pct(99.9) / lg.pct(99.9):.1f}x, "
             f"lgnb/lg = {nb.pct(99.9) / lg.pct(99.9):.2f}x")
        # Ordered LG hugs the no-loss curve at the 99th percentile.
        assert lg.pct(99) < 1.5 * clean.pct(99)
        # The unprotected tail is far worse than LG's.
        assert loss.pct(99.9) > 3 * lg.pct(99.9)
        # NB also removes the RTO tail (no >=1ms FCTs from tail loss).
        assert nb.pct(99.9) < loss.pct(99.9)

    # RDMA pays for reordering under NB: the NB p99 exceeds ordered-LG's
    # p99 by more than for the TCPs (go-back-N, Figure 11c).
    rdma_penalty = (results[("rdma", "lgnb")].pct(99)
                    / results[("rdma", "lg")].pct(99))
    dctcp_penalty = (results[("dctcp", "lgnb")].pct(99)
                     / results[("dctcp", "lg")].pct(99))
    emit(f"NB-vs-LG p99 penalty: rdma {rdma_penalty:.2f}x, dctcp {dctcp_penalty:.2f}x")
    assert rdma_penalty >= dctcp_penalty - 0.05
