"""Figure 9: DCTCP on a 25G link with 1e-3 loss — timeline with and
without the backpressure mechanism.

Paper claims:
(a) corruption collapses DCTCP throughput; enabling LinkGuardian
    restores it to the effective link speed, with the sender-switch
    queue building to the ECN threshold and the Rx buffer kept small;
(b) with backpressure disabled the reordering buffer overflows and the
    flow suffers end-to-end retransmissions ("not considered optional").
"""

from _report import emit, header, save_json, table

from repro.experiments.timeline import run_timeline

# Simulator-scale phases (the paper runs 14 s; see EXPERIMENTS.md).
PHASES = dict(clean_ms=6.0, loss_ms=14.0, lg_ms=14.0)


def _run():
    with_bp = run_timeline(
        "dctcp", rate_gbps=25, loss_rate=1e-3, sample_interval_ns=500_000,
        **PHASES,
    )
    # Figure 9b: backpressure off.  The simulator's recovery is faster
    # than Tofino recirculation, so the buffer restriction is tightened
    # (12 KB, ~4 us of 25G arrivals) to reproduce the overflow regime at
    # this scale.
    without_bp = run_timeline(
        "dctcp", rate_gbps=25, loss_rate=1e-3, sample_interval_ns=500_000,
        backpressure=False, rx_buffer_capacity=12_000, **PHASES,
    )
    return with_bp, without_bp


def test_fig09_dctcp_timeline(benchmark):
    with_bp, without_bp = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 9 — DCTCP timeline on 25G, loss 1e-3")
    phases = [
        ("clean", 2.0, with_bp.corruption_start_ms),
        ("loss (LG off)", with_bp.corruption_start_ms + 2, with_bp.lg_start_ms),
        ("LG on", with_bp.lg_start_ms + 4, with_bp.times_ms[-1]),
    ]
    rows = []
    for label, start, end in phases:
        rows.append({
            "phase": label,
            "sendrate_Gbps(a)": round(with_bp.phase_mean_rate(start, end), 2),
            "sendrate_Gbps(b,noBP)": round(without_bp.phase_mean_rate(start, end), 2),
        })
    table(rows)
    emit(f"(a) with backpressure   : e2e retx {with_bp.e2e_retx[-1]}, "
         f"rx-buffer overflows {with_bp.overflow_drops}")
    emit(f"(b) without backpressure: e2e retx {without_bp.e2e_retx[-1]}, "
         f"rx-buffer overflows {without_bp.overflow_drops}")
    save_json("fig09_timeline", {
        "with_bp": with_bp.__dict__, "without_bp": without_bp.__dict__,
    })

    clean = with_bp.phase_mean_rate(2.0, with_bp.corruption_start_ms)
    lossy = with_bp.phase_mean_rate(with_bp.corruption_start_ms + 2, with_bp.lg_start_ms)
    guarded = with_bp.phase_mean_rate(with_bp.lg_start_ms + 4, with_bp.times_ms[-1])
    # Shape: loss hurts, LG restores to ~effective link speed.
    assert lossy < clean * 0.95
    assert guarded > lossy
    assert guarded > clean * 0.9
    # With backpressure the buffer never overflows; without it, it does
    # and end-to-end retransmissions appear.
    assert with_bp.overflow_drops == 0
    assert without_bp.overflow_drops > 0
    assert without_bp.e2e_retx[-1] > with_bp.e2e_retx[-1]
