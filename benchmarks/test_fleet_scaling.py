"""Fleet-campaign scaling: wall clock vs fleet size, sharded vs serial.

Runs the fleet subsystem end-to-end at increasing fleet sizes (32 to 512
links), recording wall-clock per size for both a serial run and a
4-shard run, and asserts the acceptance bar on every size: the sharded
parallel campaign is byte-identical to the serial one.  The size/time
series lands in ``benchmarks/results/fleet_scaling.json``.
"""

import os
import time

from _report import emit, header, save_json, table

from repro.fleet import FleetCampaignSpec, FleetSpec, run_fleet_campaign

WORKERS = 4
DURATION_DAYS = 10.0
SEED = 7

#: (label, pods) — 64 links per pod at the default 8x4x8 pod shape
FLEET_SIZES = [("32", None), ("128", 2), ("256", 4), ("512", 8)]


def _campaign(pods, n_shards=1) -> FleetCampaignSpec:
    if pods is None:  # the 32-link CI smoke shape: one small pod
        fleet = FleetSpec(n_pods=1, tors_per_pod=4, fabrics_per_pod=4,
                          spine_uplinks=4, mttf_hours=500.0)
    else:
        fleet = FleetSpec(n_pods=pods, mttf_hours=1000.0)
    return FleetCampaignSpec(fleet=fleet, duration_days=DURATION_DAYS,
                             seed=SEED, n_shards=n_shards)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_fleet_scaling(benchmark):
    def _run():
        rows = []
        for label, pods in FLEET_SIZES:
            t0 = time.perf_counter()
            serial = run_fleet_campaign(_campaign(pods))
            t_serial = time.perf_counter() - t0
            t0 = time.perf_counter()
            parallel = run_fleet_campaign(
                _campaign(pods, n_shards=WORKERS), workers=WORKERS)
            t_parallel = time.perf_counter() - t0
            assert parallel.canonical_json() == serial.canonical_json(), (
                f"{label}-link campaign: sharded run diverged from serial")
            rows.append({
                "links": int(label),
                "episodes": int(serial.slos["n_episodes"]),
                "serial_s": t_serial,
                "parallel_s": t_parallel,
                "speedup": t_serial / t_parallel,
                "affected_flow_fraction":
                    serial.slos["affected_flow_fraction"],
            })
        return rows

    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    cores = _usable_cores()
    header(f"Fleet scaling — {DURATION_DAYS:g}-day campaigns, "
           f"{WORKERS} shards/workers, {cores} usable cores")
    table(rows)
    emit("(sharded parallel byte-identical to serial at every size)")
    save_json("fleet_scaling", {
        "workers": WORKERS,
        "duration_days": DURATION_DAYS,
        "seed": SEED,
        "usable_cores": cores,
        "rows": rows,
    })
