"""Figure 2: flow-size distributions of six datacenter workloads.

Paper claim: most datacenter flows are short — the majority fit within
a single packet, which is why tail-loss handling matters so much.
"""

from _report import emit, header, save_json, table

from repro.experiments.figures import figure2_flow_size_cdfs
from repro.workloads import WORKLOADS


def _run():
    return figure2_flow_size_cdfs()


def test_fig02_flow_size_cdfs(benchmark):
    cdfs = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 2 — flow/message size CDFs (fraction of flows <= size)")
    rows = []
    for index, size in enumerate(cdfs["size_bytes"]):
        row = {"size_B": size}
        for name in WORKLOADS:
            row[name] = round(cdfs[name][index], 3)
        rows.append(row)
    table(rows)
    save_json("fig02_flowsizes", cdfs)

    single = {name: dist.single_packet_fraction() for name, dist in WORKLOADS.items()}
    emit("\nsingle-packet fraction per workload: "
         + ", ".join(f"{k}={v:.2f}" for k, v in single.items()))
    assert single["Google all RPC"] > 0.8
    assert single["Meta key-value"] > 0.9
    # The storage/search workloads are the multi-packet end of Figure 2.
    assert single["DCTCP web search"] < 0.1
