"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper table, but the experiments the paper's design sections imply:

* **N retransmit copies** (Equation 2) versus always-one — the knob that
  buys the operator's target loss rate;
* **multiple dummy copies** (§5, bursty tail loss) — robustness of
  tail-loss detection when the tail packet *and* the dummy are lost;
* **incremental deployment fraction** (§5) — how much of the fleet must
  be upgraded before the deployment-study penalty approaches the
  fully-deployed number.
"""

from _report import emit, header, save_json, table

from repro.experiments.incremental import run_incremental_deployment
from repro.experiments.stress import run_stress_test
from repro.linkguardian.config import expected_effective_loss


def _run_copies_ablation():
    """At 5% loss, N=1 vs N=2 vs N=3 copies: measured effective loss."""
    rows = []
    for n_copies in (1, 2, 3):
        result = run_stress_test(
            rate_gbps=100, loss_rate=0.05, ordered=True, duration_ms=6.0,
            n_copies_override=n_copies, seed=33,
        )
        rows.append({
            "N": n_copies,
            "eff_loss_measured": result.effective_loss_measured,
            "eff_loss_expected": expected_effective_loss(0.05, n_copies),
            "retx_copies_sent": result.loss_events and
                round(result.recovered / max(result.loss_events, 1), 3),
        })
    return rows


def test_ablation_retx_copies(benchmark):
    rows = benchmark.pedantic(_run_copies_ablation, rounds=1, iterations=1)
    header("Ablation — retransmit copies N vs effective loss (5% link loss)")
    table(rows)
    save_json("ablation_retx_copies", rows)
    measured = [r["eff_loss_measured"] for r in rows]
    # More copies -> monotonically lower effective loss.
    assert measured[0] > measured[1] >= measured[2]
    # N=1 at 5% loss is measurable and near p^2.
    assert 0.3 * 0.0025 < measured[0] < 3 * 0.0025


def test_ablation_incremental_deployment(benchmark):
    rows = benchmark.pedantic(
        run_incremental_deployment, rounds=1, iterations=1,
    )
    header("Ablation — LG deployment fraction vs total penalty (§5)")
    table(rows)
    save_json("ablation_incremental", rows)
    penalties = [r["mean_penalty"] for r in rows]
    # Penalty decreases as deployment widens; full deployment is orders
    # of magnitude better than none.
    assert penalties[-1] < penalties[0] / 100
    assert all(b <= a * 1.5 for a, b in zip(penalties, penalties[1:]))
    emit("\npenalty falls monotonically with deployment fraction; most of "
         "the win needs most of the fleet (losses follow the weakest link)")
