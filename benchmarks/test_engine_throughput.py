"""Event-kernel throughput: heap vs calendar queue, plus hybrid-cell gain.

Two workloads drive the raw kernel (no protocol code, just scheduling):

* *streaming* — every event schedules its successor a fixed spacing
  ahead, the shape of line-rate packet serialization chains;
* *timer-heavy* — each event also arms a far-future timer that is
  cancelled before it fires, the shape of per-packet retransmission /
  ackNoTimeout timers.  This is the workload the calendar queue and the
  eager tombstone compaction exist for, and the one the acceptance bar
  is set on: the calendar queue must not lose to the heap.

A third measurement times one fig10-style sparse-loss FCT cell on the
packet and hybrid backends — the end-to-end gain the kernel and the
snapshot machinery buy through ``repro.fastpath.splice``.
"""

import time

from _report import emit, header, save_json, table

from repro.core.engine import Simulator
from repro.core.rng import RngFactory
from repro.runner.cells import run_cell
from repro.runner.spec import ExperimentSpec

N_EVENTS = 200_000
TIMER_HORIZON_NS = 1_000_000
SPACING_NS = 123

FIG10 = ExperimentSpec(
    kind="fct", transport="dctcp", scenario="lg", flow_size=143,
    loss_rate=1e-3, n_trials=150, rate_gbps=100.0)
FIG10 = FIG10.with_(seed=RngFactory(1).child_seed(FIG10.grid_key()))


def _streaming(sim: Simulator, n_events: int) -> None:
    state = {"left": n_events}

    def fire():
        state["left"] -= 1
        if state["left"] > 0:
            sim.schedule(SPACING_NS, fire)

    sim.schedule(0, fire)
    sim.run()


def _timer_heavy(sim: Simulator, n_events: int) -> None:
    """Each tick arms a far-future timer and cancels the previous one —
    the queue carries a deep tail of tombstones the whole run."""
    state = {"left": n_events, "timer": None}

    def timeout():  # pragma: no cover - timers are always cancelled
        raise AssertionError("cancelled timer fired")

    def fire():
        state["left"] -= 1
        if state["timer"] is not None:
            state["timer"].cancel()
        state["timer"] = sim.schedule(TIMER_HORIZON_NS, timeout)
        if state["left"] > 0:
            sim.schedule(SPACING_NS, fire)
        elif state["timer"] is not None:
            state["timer"].cancel()

    sim.schedule(0, fire)
    sim.run()


def _rate(queue: str, workload, n_events: int) -> dict:
    sim = Simulator(queue=queue)
    t0 = time.perf_counter()
    workload(sim, n_events)
    wall = time.perf_counter() - t0
    snap = sim.obs_snapshot()
    return {
        "queue": queue,
        "workload": workload.__name__.strip("_"),
        "events": snap["events_processed"],
        "cancelled": snap["events_cancelled"],
        "wall_s": round(wall, 4),
        "events_per_s": round(snap["events_processed"] / wall, 0),
    }


def test_engine_throughput(benchmark):
    def _run():
        rows = [
            _rate(queue, workload, N_EVENTS)
            for workload in (_streaming, _timer_heavy)
            for queue in ("heap", "calendar")
        ]
        t0 = time.perf_counter()
        run_cell(FIG10)
        t_packet = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_cell(FIG10.with_(backend="hybrid"))
        t_hybrid = time.perf_counter() - t0
        return rows, t_packet, t_hybrid

    rows, t_packet, t_hybrid = benchmark.pedantic(_run, rounds=1,
                                                  iterations=1)

    header(f"Event-kernel throughput — {N_EVENTS} events per workload")
    table(rows, ["queue", "workload", "events", "cancelled",
                 "wall_s", "events_per_s"])
    hybrid_speedup = t_packet / t_hybrid
    emit(f"fig10 cell: packet {t_packet:.3f}s, hybrid {t_hybrid:.3f}s "
         f"({hybrid_speedup:.1f}x)")
    save_json("engine_throughput", {
        "n_events": N_EVENTS,
        "kernels": rows,
        "fig10_packet_s": t_packet,
        "fig10_hybrid_s": t_hybrid,
        "fig10_hybrid_speedup": hybrid_speedup,
    })

    by = {(r["queue"], r["workload"]): r for r in rows}
    # Identical dispatch work regardless of kernel.
    for workload in ("streaming", "timer-heavy"):
        w = workload.replace("-", "_")
        assert (by[("heap", w)]["events"]
                == by[("calendar", w)]["events"])
    # The acceptance bar: on the timer-heavy workload the calendar
    # queue must be at least on par with the heap (10% measurement
    # slack — "on par or better", not "strictly faster on every run").
    heap = by[("heap", "timer_heavy")]["events_per_s"]
    calendar = by[("calendar", "timer_heavy")]["events_per_s"]
    assert calendar >= 0.9 * heap, (
        f"calendar queue {calendar:.0f} ev/s < 0.9x heap {heap:.0f} ev/s "
        f"on the timer-heavy workload")
    # The kernel+snapshot payoff: hybrid >= 3x packet on the
    # fig10-style sparse-loss cell (the issue's acceptance floor).
    assert hybrid_speedup >= 3.0, (
        f"hybrid only {hybrid_speedup:.1f}x packet on the fig10 cell")
