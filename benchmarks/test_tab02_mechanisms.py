"""Table 2: contribution of LinkGuardian's mechanisms to tail FCT.

24,387 B DCTCP flows at 1e-3-class loss under: plain link-local ReTx,
ReTx+Order, ReTx+Tail (= LinkGuardianNB) and ReTx+Tail+Order (= full
LinkGuardian), against the No-Loss and Loss baselines.

Paper claims: plain ReTx already fixes the 99.9th percentile; tail-loss
handling is what fixes 99.99%+ (without it, a tail loss still costs an
RTO); ordering adds the final ~33% at the extreme tail.
"""

from _report import emit, header, save_json, table

from repro.experiments.mechanisms import run_mechanism_study

TRIALS = 700
LOSS = 5e-3


def _run():
    return run_mechanism_study(
        transport="dctcp", flow_size=24_387, n_trials=TRIALS,
        loss_rate=LOSS, seed=15,
    )


def test_tab02_mechanism_contributions(benchmark):
    study = benchmark.pedantic(_run, rounds=1, iterations=1)
    header(f"Table 2 — top-percentile FCT (us) per mechanism "
           f"({TRIALS} DCTCP trials of 24,387 B, loss {LOSS:g})")
    rows = [dict(variant=name, **vals) for name, vals in study.items()]
    table(rows, columns=["variant", "p50", "p99", "p99.9", "p99.99", "std", "trials"])
    save_json("tab02_mechanisms", study)

    no_loss = study["No Loss"]
    loss = study["Loss"]
    retx = study["ReTx"]
    retx_tail = study["ReTx+Tail"]
    full = study["ReTx+Tail+Order"]

    # The unprotected link has an RTO-scale extreme tail.
    assert loss["p99.99"] > 900
    # Plain ReTx fixes the *body* of the distribution (non-tail losses)...
    assert retx["p99"] <= loss["p99"] * 1.05
    # ...but without tail handling the extreme tail still sees RTOs,
    # exactly the paper's reading of Table 2.
    assert retx["p99.99"] > 900
    assert retx_tail["p99.99"] < retx["p99.99"] / 2
    # The full LinkGuardian approaches the no-loss extreme tail, and
    # ordering buys the final improvement over ReTx+Tail (paper: ~33%).
    assert full["p99.99"] < 3 * no_loss["p99.99"]
    assert full["p99.99"] <= retx_tail["p99.99"]
    emit("\nshape: Loss/ReTx keep an RTO tail; +Tail removes it; "
         "+Tail+Order ~= No Loss at p99.99")
