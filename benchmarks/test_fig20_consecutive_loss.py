"""Figure 20: distribution of consecutive packet losses at 1% / 5% loss.

The measurement behind provisioning 5 reTxReqs registers (§3.5): even
at an unreasonably high 5% loss rate, runs of more than 5 consecutive
lost packets are vanishingly rare (>=99.9999% coverage in the paper's
measurement; the bench asserts the simulator-scale equivalent).
"""

from _report import emit, header, save_json, table

from repro.experiments.figures import figure20_consecutive_losses


def _run():
    return figure20_consecutive_losses(n_packets=2_000_000)


def test_fig20_consecutive_losses(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 20 — CDF of consecutive packets lost (bursty corruption)")
    rows = []
    for rate, data in results.items():
        row = {"loss": rate, "bursts": len(data["bursts"])}
        for k in range(1, 8):
            row[f"<= {k}"] = round(data["cdf"][k], 6)
        rows.append(row)
    table(rows)
    save_json("fig20_consecutive_loss", {
        str(rate): data["cdf"] for rate, data in results.items()
    })

    for rate, data in results.items():
        # Single losses dominate; bursts fall off geometrically.
        assert data["cdf"][1] > 0.70
        assert data["cdf"][3] > data["cdf"][1]
        # 5 registers cover essentially all loss events even at 5% loss.
        assert data["five_register_coverage"] > 0.999
    emit("\n5 provisioned reTxReqs registers cover >99.9% of loss events "
         "even at 5% loss (paper: 99.9999% over a larger sample)")
