"""Figure 10: top-1% FCTs for 143 B (single-packet) flows on 100G.

Paper claims: under 1e-3 corruption loss the 99.9th-percentile FCT
inflates by 51x (DCTCP) / 66x (RDMA) because the lost packet is always
a tail packet that costs an RTO; LinkGuardian and LinkGuardianNB both
mask the loss completely (identical curves — ordering is irrelevant
for single-packet flows).

Scale note: the paper runs 300K trials at 1e-3; the bench runs fewer
trials at an inflated 5e-3 so that the same number of loss events lands
in the tail (see EXPERIMENTS.md).
"""

from _report import emit, header, save_json, table

from repro.experiments.fct import run_fct_experiment

TRIALS = 3_000
LOSS = 5e-3


def _run():
    results = {}
    for transport in ("dctcp", "rdma"):
        for scenario in ("noloss", "loss", "lg", "lgnb"):
            results[(transport, scenario)] = run_fct_experiment(
                transport=transport, flow_size=143, n_trials=TRIALS,
                scenario=scenario, loss_rate=LOSS, seed=10,
            )
    return results


def test_fig10_single_packet_fct(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    header(f"Figure 10 — 143 B flows on 100G ({TRIALS} trials, loss {LOSS:g})")
    table([r.summary() for r in results.values()])
    save_json("fig10_fct_single_packet", {
        f"{t}-{s}": r.summary() for (t, s), r in results.items()
    })

    for transport, paper_gain in (("dctcp", 51), ("rdma", 66)):
        loss = results[(transport, "loss")]
        lg = results[(transport, "lg")]
        nb = results[(transport, "lgnb")]
        clean = results[(transport, "noloss")]
        gain = loss.pct(99.9) / lg.pct(99.9)
        emit(f"{transport}: p99.9 improvement {gain:.0f}x (paper: {paper_gain}x); "
             f"LG vs no-loss at p99.9: {lg.pct(99.9) / clean.pct(99.9):.2f}x")
        # The unprotected tail is RTO-bound (>= 1 ms).
        assert loss.pct(99.9) > 1_000
        # LG masks it: within 2x of the lossless p99.9.
        assert lg.pct(99.9) < 2 * clean.pct(99.9)
        # Order-of-magnitude improvement (paper: 51x/66x).
        assert gain > 10
        # Single-packet flows: LG and LG_NB are indistinguishable.
        assert abs(nb.pct(99.9) - lg.pct(99.9)) < 0.2 * lg.pct(99.9)
