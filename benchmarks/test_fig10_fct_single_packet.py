"""Figure 10: top-1% FCTs for 143 B (single-packet) flows on 100G.

Paper claims: under 1e-3 corruption loss the 99.9th-percentile FCT
inflates by 51x (DCTCP) / 66x (RDMA) because the lost packet is always
a tail packet that costs an RTO; LinkGuardian and LinkGuardianNB both
mask the loss completely (identical curves — ordering is irrelevant
for single-packet flows).

Scale note: the paper runs 300K trials at 1e-3; the bench runs fewer
trials at an inflated 5e-3 so that the same number of loss events lands
in the tail (see EXPERIMENTS.md).

The grid runs through the declarative runner layer: one SweepSpec over
transports x scenarios, executed by SweepRunner.
"""

from _report import emit, header, save_json, table

from repro.runner import ExperimentSpec, SweepRunner, SweepSpec

TRIALS = 3_000
LOSS = 5e-3

SWEEP = SweepSpec(
    name="fig10",
    base=ExperimentSpec(kind="fct", flow_size=143, n_trials=TRIALS,
                        loss_rate=LOSS, seed=10),
    axes={"transport": ["dctcp", "rdma"],
          "scenario": ["noloss", "loss", "lg", "lgnb"]},
)


def _run():
    results = SweepRunner(SWEEP).run()
    return {(r.spec["transport"], r.spec["scenario"]): r for r in results}


def test_fig10_single_packet_fct(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    header(f"Figure 10 — 143 B flows on 100G ({TRIALS} trials, loss {LOSS:g})")
    table([r.metrics for r in results.values()])
    save_json("fig10_fct_single_packet", {
        f"{t}-{s}": r.metrics for (t, s), r in results.items()
    })

    def pct999(transport, scenario):
        return results[(transport, scenario)].metrics["p99.9_us"]

    for transport, paper_gain in (("dctcp", 51), ("rdma", 66)):
        loss = pct999(transport, "loss")
        lg = pct999(transport, "lg")
        nb = pct999(transport, "lgnb")
        clean = pct999(transport, "noloss")
        gain = loss / lg
        emit(f"{transport}: p99.9 improvement {gain:.0f}x (paper: {paper_gain}x); "
             f"LG vs no-loss at p99.9: {lg / clean:.2f}x")
        # The unprotected tail is RTO-bound (>= 1 ms).
        assert loss > 1_000
        # LG masks it: within 2x of the lossless p99.9.
        assert lg < 2 * clean
        # Order-of-magnitude improvement (paper: 51x/66x).
        assert gain > 10
        # Single-packet flows: LG and LG_NB are indistinguishable.
        assert abs(nb - lg) < 0.2 * lg
