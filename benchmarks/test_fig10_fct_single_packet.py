"""Figure 10: top-1% FCTs for 143 B (single-packet) flows on 100G.

Paper claims: under 1e-3 corruption loss the 99.9th-percentile FCT
inflates by 51x (DCTCP) / 66x (RDMA) because the lost packet is always
a tail packet that costs an RTO; LinkGuardian and LinkGuardianNB both
mask the loss completely (identical curves — ordering is irrelevant
for single-packet flows).

Scale note: the paper runs 300K trials at 1e-3; the bench runs fewer
trials at an inflated 5e-3 so that the same number of loss events lands
in the tail (see EXPERIMENTS.md).

The grid runs through the declarative runner layer: one SweepSpec over
transports x scenarios, executed by SweepRunner.
"""

from _report import emit, header, save_json, table

from repro.runner import ExperimentSpec, SweepRunner, SweepSpec, run_cell

TRIALS = 3_000
LOSS = 5e-3

SWEEP = SweepSpec(
    name="fig10",
    base=ExperimentSpec(kind="fct", flow_size=143, n_trials=TRIALS,
                        loss_rate=LOSS, seed=10),
    axes={"transport": ["dctcp", "rdma"],
          "scenario": ["noloss", "loss", "lg", "lgnb"]},
)


def _run():
    results = SweepRunner(SWEEP).run()
    return {(r.spec["transport"], r.spec["scenario"]): r for r in results}


def test_fig10_single_packet_fct(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    header(f"Figure 10 — 143 B flows on 100G ({TRIALS} trials, loss {LOSS:g})")
    table([r.metrics for r in results.values()])
    save_json("fig10_fct_single_packet", {
        f"{t}-{s}": r.metrics for (t, s), r in results.items()
    })

    def pct999(transport, scenario):
        return results[(transport, scenario)].metrics["p99.9_us"]

    for transport, paper_gain in (("dctcp", 51), ("rdma", 66)):
        loss = pct999(transport, "loss")
        lg = pct999(transport, "lg")
        nb = pct999(transport, "lgnb")
        clean = pct999(transport, "noloss")
        gain = loss / lg
        emit(f"{transport}: p99.9 improvement {gain:.0f}x (paper: {paper_gain}x); "
             f"LG vs no-loss at p99.9: {lg / clean:.2f}x")
        # The unprotected tail is RTO-bound (>= 1 ms).
        assert loss > 1_000
        # LG masks it: within 2x of the lossless p99.9.
        assert lg < 2 * clean
        # Order-of-magnitude improvement (paper: 51x/66x).
        assert gain > 10
        # Single-packet flows: LG and LG_NB are indistinguishable.
        assert abs(nb - lg) < 0.2 * lg


OVERHEAD_TRIALS = 1_500


def _overhead_cell(obs):
    spec = ExperimentSpec(kind="fct", flow_size=143, n_trials=OVERHEAD_TRIALS,
                          loss_rate=LOSS, transport="dctcp", scenario="lg",
                          seed=10, obs=obs)
    return run_cell(spec)


def _run_overhead():
    plain = _overhead_cell({})
    instrumented = _overhead_cell(
        {"spans": True, "timeline": {"interval_ns": 100_000}})
    return plain, instrumented


def test_fig10_obs_overhead(benchmark):
    """Enabled-mode span+timeline overhead on the fig10 workload.

    The disabled-mode gate (< 3% regression vs the seed benchmark) is
    enforced by the fig10 benchmark above; this test measures what
    turning the instrumentation *on* costs and records it alongside.
    """
    plain, instrumented = benchmark.pedantic(_run_overhead, rounds=1,
                                             iterations=1)
    plain_run = plain.timings["run"]
    instr_run = instrumented.timings["run"]
    overhead_pct = (instr_run - plain_run) / plain_run * 100.0
    header(f"Figure 10 — obs overhead ({OVERHEAD_TRIALS} trials, "
           f"spans + 100us timeline)")
    emit(f"run phase: plain {plain_run:.3f}s, instrumented {instr_run:.3f}s "
         f"-> overhead {overhead_pct:+.1f}%")
    save_json("fig10_obs_overhead", {
        "trials": OVERHEAD_TRIALS,
        "plain_run_s": plain_run,
        "instrumented_run_s": instr_run,
        "overhead_pct": overhead_pct,
        "spans": instrumented.artifacts["spans"],
        "timeline_samples": instrumented.artifacts["timeline"]["sampled"],
    })
    # Instrumentation must observe without perturbing: identical results.
    assert plain.canonical_json() == instrumented.canonical_json()
    # Spans and the flight recorder actually engaged on this workload.
    assert instrumented.artifacts["spans"]["episodes"] > 0
    assert instrumented.artifacts["timeline"]["sampled"] > 0
    # Loose pathology bound; the measured number is what the JSON reports.
    assert overhead_pct < 400.0
