"""Table 1: corruption loss-rate buckets observed in Microsoft datacenters.

The trace generator must draw link loss rates matching the published
bucket distribution — the input to every deployment-scale result.
"""

import pytest

from _report import header, save_json, table

from repro.experiments.figures import table1_loss_buckets


def _run():
    return table1_loss_buckets(n_samples=200_000)


def test_tab01_loss_buckets(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Table 1 — corruption loss-rate buckets (published vs sampled)")
    table(rows)
    save_json("tab01_loss_buckets", rows)
    for row in rows:
        assert row["sampled_%"] == pytest.approx(row["published_%"], abs=0.5)
