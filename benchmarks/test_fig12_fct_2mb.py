"""Figure 12: top-5% FCTs for 2 MB DCTCP flows on 100G.

Paper claims: with ~80% of 2 MB flows hitting at least one corruption
loss at 1e-3, ordered LinkGuardian still tracks the no-loss curve (4x
better p99.9 than unprotected); LinkGuardianNB is slightly worse in the
extreme tail (2x) because larger flows have more pending bytes when a
reordering-induced cwnd cut lands.

The scenario grid runs through the declarative runner layer.
"""

from _report import emit, header, save_json, table

from repro.runner import ExperimentSpec, SweepRunner, SweepSpec

TRIALS = 120
LOSS = 1e-3
SIZE = 2_000_000

SWEEP = SweepSpec(
    name="fig12",
    base=ExperimentSpec(kind="fct", flow_size=SIZE, n_trials=TRIALS,
                        loss_rate=LOSS, seed=13),
    axes={"scenario": ["noloss", "loss", "lg", "lgnb"]},
)


def _run():
    results = SweepRunner(SWEEP).run()
    return {r.spec["scenario"]: r for r in results}


def test_fig12_2mb_fct(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    header(f"Figure 12 — 2 MB DCTCP flows on 100G ({TRIALS} trials, loss {LOSS:g})")
    table([r.metrics for r in results.values()])
    save_json("fig12_fct_2mb", {s: r.metrics for s, r in results.items()})

    affected = results["loss"].metrics["affected"]
    emit(f"flows affected by corruption (unprotected): "
         f"{affected}/{TRIALS} = {affected / TRIALS:.0%} (paper: ~80%)")
    # Most 2 MB flows hit at least one loss at 1e-3 (1370 packets each).
    assert affected / TRIALS > 0.5

    def pct99(scenario):
        return results[scenario].metrics["p99_us"]

    # LG tracks the no-loss distribution through the tail.
    assert pct99("lg") < 1.3 * pct99("noloss")
    # The unprotected flows are worse than both LG modes in the tail.
    assert pct99("loss") >= pct99("lg")
    assert pct99("loss") >= pct99("lgnb") * 0.95
