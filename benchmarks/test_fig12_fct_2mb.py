"""Figure 12: top-5% FCTs for 2 MB DCTCP flows on 100G.

Paper claims: with ~80% of 2 MB flows hitting at least one corruption
loss at 1e-3, ordered LinkGuardian still tracks the no-loss curve (4x
better p99.9 than unprotected); LinkGuardianNB is slightly worse in the
extreme tail (2x) because larger flows have more pending bytes when a
reordering-induced cwnd cut lands.
"""

from _report import emit, header, save_json, table

from repro.experiments.fct import run_fct_experiment

TRIALS = 120
LOSS = 1e-3
SIZE = 2_000_000


def _run():
    results = {}
    for scenario in ("noloss", "loss", "lg", "lgnb"):
        results[scenario] = run_fct_experiment(
            transport="dctcp", flow_size=SIZE, n_trials=TRIALS,
            scenario=scenario, loss_rate=LOSS, seed=13,
        )
    return results


def test_fig12_2mb_fct(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    header(f"Figure 12 — 2 MB DCTCP flows on 100G ({TRIALS} trials, loss {LOSS:g})")
    table([r.summary() for r in results.values()])
    save_json("fig12_fct_2mb", {s: r.summary() for s, r in results.items()})

    affected = sum(
        1 for r in results["loss"].records if r.retransmissions or r.timeouts
    )
    emit(f"flows affected by corruption (unprotected): "
         f"{affected}/{TRIALS} = {affected / TRIALS:.0%} (paper: ~80%)")
    # Most 2 MB flows hit at least one loss at 1e-3 (1370 packets each).
    assert affected / TRIALS > 0.5
    clean, loss = results["noloss"], results["loss"]
    lg, nb = results["lg"], results["lgnb"]
    # LG tracks the no-loss distribution through the tail.
    assert lg.pct(99) < 1.3 * clean.pct(99)
    # The unprotected flows are worse than both LG modes in the tail.
    assert loss.pct(99) >= lg.pct(99)
    assert loss.pct(99) >= nb.pct(99) * 0.95
