"""Lifecycle-replay scaling: wall clock vs simulated months, chunked vs serial.

Runs the lifecycle subsystem end-to-end at increasing trace durations
(one to six months of simulated fleet time on the default 4-pod fleet),
recording wall-clock per duration for both a serial replay and a
time-chunked parallel one, and asserts the acceptance bar at every
duration: the chunked parallel rollup is byte-identical to the serial
one.  The duration/time series lands in
``benchmarks/results/lifecycle_scaling.json``.
"""

import os
import time

from _report import emit, header, save_json, table

from repro.lifecycle import ReplaySpec, TraceSpec, run_replay

WORKERS = 4
SEED = 7

DURATIONS_DAYS = [30.0, 60.0, 120.0, 180.0]


def _replay(duration_days, n_chunks=1) -> ReplaySpec:
    return ReplaySpec(
        trace=TraceSpec(duration_days=duration_days, seed=SEED),
        backend="hybrid",
        n_chunks=n_chunks,
    )


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_lifecycle_scaling(benchmark):
    def _run():
        rows = []
        for days in DURATIONS_DAYS:
            t0 = time.perf_counter()
            serial = run_replay(_replay(days))
            t_serial = time.perf_counter() - t0
            t0 = time.perf_counter()
            chunked = run_replay(_replay(days, n_chunks=WORKERS),
                                 workers=WORKERS)
            t_chunked = time.perf_counter() - t0
            assert chunked.canonical_json() == serial.canonical_json(), (
                f"{days:g}-day replay: chunked run diverged from serial")
            rows.append({
                "days": int(days),
                "episodes": serial.counts["n_episodes"],
                "serial_s": t_serial,
                "chunked_s": t_chunked,
                "goodput_slo": serial.slos["goodput_slo_attainment"],
                "queue_max": serial.slos["repair_queue_depth_max"],
            })
        return rows

    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    cores = _usable_cores()
    header(f"Lifecycle scaling — 256-link fleet, hybrid tier, "
           f"{WORKERS} chunks/workers, {cores} usable cores")
    table(rows)
    emit("(time-chunked parallel byte-identical to serial at every duration)")
    save_json("lifecycle_scaling", {
        "workers": WORKERS,
        "seed": SEED,
        "usable_cores": cores,
        "rows": rows,
    })
