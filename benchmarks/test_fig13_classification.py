"""Figure 13: why out-of-order recovery works for TCP.

Classifies the 24,387 B DCTCP flows "affected" by LinkGuardianNB's
out-of-order recovery (those that saw a SACK) through the paper's
decision tree.  Paper claims: the overwhelming majority land in groups
A-C, whose FCT is unaffected; only the small group D (cwnd cut while
bytes were still pending) pays, and its penalty is bounded by the few
MSS that were pending.
"""

from _report import emit, header, save_json, table

from repro.experiments.fct import run_fct_experiment

TRIALS = 1_500
LOSS = 1e-2  # inflated so hundreds of flows are affected
SIZE = 24_387


def _run():
    return run_fct_experiment(
        transport="dctcp", flow_size=SIZE, n_trials=TRIALS,
        scenario="lgnb", loss_rate=LOSS, seed=14,
    )


def test_fig13_classification(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    tree = result.classification()
    header(f"Figure 13 — classification of affected {SIZE} B DCTCP flows "
           f"under LG_NB ({TRIALS} trials, loss {LOSS:g})")
    table([tree.as_dict()])
    save_json("fig13_classification", tree.as_dict())

    emit(f"\naffected flows: {tree.affected} "
         f"({tree.affected / max(1, tree.total):.1%} of trials)")
    groups = tree.group_a + tree.group_b + tree.group_c + tree.group_d
    benign = tree.group_a + tree.group_b + tree.group_c
    emit(f"benign (A+B+C): {benign}/{groups}; paying group D: {tree.group_d}")

    assert tree.affected > 50, "need enough affected flows to classify"
    assert groups == tree.affected  # the tree partitions affected flows
    # Paper shape: group D is a minority of affected flows.
    assert tree.group_d < 0.5 * tree.affected
    # The flow must still complete fast despite reordering: no RTO tails.
    rto_flows = sum(1 for r in result.records if r.timeouts)
    assert rto_flows <= 0.01 * TRIALS
