"""Figure 1: packet loss rate vs optical attenuation per transceiver.

Paper claim: as link speed grows through higher baudrate (10G -> 25G)
and denser modulation (25G -> 50G PAM4), links lose packets at
progressively lower attenuation, and 50G's mandatory FEC no longer
compensates.
"""

from _report import emit, header, save_json, table

from repro.experiments.figures import figure1_attenuation_series


def _run():
    return figure1_attenuation_series()


def test_fig01_attenuation(benchmark):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 1 — packet loss rate vs optical attenuation (1518 B frames)")
    names = [k for k in series if k != "attenuation_db"]
    rows = []
    for index, atten in enumerate(series["attenuation_db"]):
        if index % 4:
            continue  # print every 1 dB
        row = {"atten_dB": atten}
        for name in names:
            row[name] = series[name][index]
        rows.append(row)
    table(rows)
    save_json("fig01_attenuation", series)

    # Shape assertions (who fails first, monotonicity).
    for name in names:
        values = series[name]
        assert all(b >= a for a, b in zip(values, values[1:])), name
    at_12db = {name: series[name][series["attenuation_db"].index(12.0)] for name in names}
    assert at_12db["50GBASE-SR (FEC)"] > at_12db["25GBASE-SR"] > at_12db["10GBASE-SR"]
    assert at_12db["25GBASE-SR (FEC)"] < at_12db["25GBASE-SR"]
    emit("\nshape: 50G(FEC) > 25G > 25G(FEC) > 10G at 12 dB — as in the paper")
