"""§5 extension: RoCE selective repeat makes LG_NB viable for RDMA.

The paper's Figure 11c shows LinkGuardianNB barely helps multi-packet
go-back-N RDMA (no reordering window); §5 points to RoCE's "selective
repeat" NIC feature as the fix.  This bench quantifies the claim: with
an SR responder, LG_NB's out-of-order recoveries are absorbed and the
FCT tail matches ordered LinkGuardian's — without the ordered mode's
reordering buffer and backpressure machinery on the switch.
"""

from _report import emit, header, save_json, table

from repro.experiments.rdma_future import run_rdma_reordering_study


def _run():
    return run_rdma_reordering_study(n_trials=350, loss_rate=1e-2, seed=26)


def test_sec5_selective_repeat(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("§5 — RDMA reordering tolerance: go-back-N vs selective repeat")
    table(list(results.values()))
    save_json("sec5_rdma_selective_repeat", results)

    gbn = results["lgnb+gbn"]
    sr = results["lgnb+sr"]
    ordered = results["lg+gbn"]
    # Under LG_NB, go-back-N pays for every reordered recovery.
    assert gbn["e2e_retx"] > 5 * max(sr["e2e_retx"], 1)
    assert gbn["p99_us"] > 1.3 * sr["p99_us"]
    # Selective repeat brings LG_NB to ordered-LG's tail.
    assert sr["p99_us"] < 1.2 * ordered["p99_us"]
    # Ordered LG keeps the NIC completely unaware (no NAKs at all).
    assert ordered["naks"] == 0
    emit("\nLG_NB + selective-repeat matches ordered LG for RDMA, "
         "without the reordering buffer (§5's thesis)")
