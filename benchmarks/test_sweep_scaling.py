"""Runner-layer scaling: a 4-process sweep vs the serial run.

The acceptance bar for the runner layer: over >= 8 cells, a 4-worker
sweep is bit-identical to the serial run and >= 2x faster on 4 cores.
Bit-identity is asserted unconditionally (it holds on any machine); the
speedup assertion only engages when the host actually has >= 4 usable
cores — on a 1-core container process-pool fan-out cannot beat serial.
"""

import os
import time

from _report import emit, header

from repro.runner import ExperimentSpec, SweepRunner, SweepSpec

WORKERS = 4

SWEEP = SweepSpec(
    name="scaling",
    base=ExperimentSpec(kind="fct", flow_size=24_387, n_trials=700,
                        loss_rate=5e-3, seed=10),
    axes={"transport": ["dctcp", "rdma"],
          "scenario": ["noloss", "loss", "lg", "lgnb"]},
)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_sweep_parallel_identical_and_faster(benchmark):
    def _run():
        t0 = time.perf_counter()
        serial = SweepRunner(SWEEP, workers=1).run()
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = SweepRunner(SWEEP, workers=WORKERS).run()
        t_parallel = time.perf_counter() - t0
        return serial, parallel, t_serial, t_parallel

    serial, parallel, t_serial, t_parallel = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    cores = _usable_cores()
    speedup = t_serial / t_parallel
    header(f"Sweep scaling — {len(serial)} cells, {WORKERS} workers, "
           f"{cores} usable cores")
    emit(f"serial {t_serial:.1f}s, parallel {t_parallel:.1f}s, "
         f"speedup {speedup:.2f}x")

    assert len(serial) >= 8
    assert [r.canonical_json() for r in serial] \
        == [r.canonical_json() for r in parallel]
    if cores >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x on {cores} cores, got {speedup:.2f}x"
        )
    else:
        emit(f"(speedup assertion skipped: only {cores} core(s) available)")
