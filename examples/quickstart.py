#!/usr/bin/env python3
"""Quickstart: mask a corruption packet loss with LinkGuardian.

Builds the paper's two-switch testbed (sw2 -> sw6 over a corrupting
100G optical link), sends a burst of packets through it with a
deterministic corruption of packet #10, and shows LinkGuardian
detecting, retransmitting and re-ordering the loss — invisibly to the
receiver, in a few microseconds, with no timeout.

Run:  python examples/quickstart.py
"""

from repro.core.engine import Simulator
from repro.linkguardian.config import LinkGuardianConfig
from repro.linkguardian.protocol import ProtectedLink
from repro.packets.packet import Packet
from repro.phy.loss import ScriptedLoss
from repro.switchsim.link import Link
from repro.switchsim.switch import Switch
from repro.units import MS, MTU_FRAME, gbps, serialization_ns


def main() -> None:
    sim = Simulator()
    sw2 = Switch(sim, "sw2")
    sw6 = Switch(sim, "sw6")

    # The corrupting link: drop exactly the 10th data frame.
    plink = ProtectedLink(
        sim, sw2, sw6,
        rate_bps=gbps(100),
        config=LinkGuardianConfig(ordered=True),
        loss=ScriptedLoss({10}),
    )

    # A sink behind the receiver switch collecting what gets through.
    delivered = []
    sw6.add_port("sink", gbps(100), Link(sim, 10, receiver=delivered.append))
    sw6.set_route("server", "sink")
    sw2.set_route("server", plink.forward_port_name)

    # corruptd would normally do this; here we activate directly with the
    # measured loss rate, which sizes the retransmit copies (Equation 2).
    n_copies = plink.activate(actual_loss_rate=1e-4)
    print(f"LinkGuardian active, retransmitting N={n_copies} copies per loss")

    # Send 50 MTU frames at line rate.
    spacing = serialization_ns(MTU_FRAME, gbps(100))
    for index in range(50):
        packet = Packet(size=MTU_FRAME, dst="server", flow_id=index)
        sim.schedule_at(index * spacing, sw2.forward, packet)
    sim.run(until=1 * MS)

    stats = plink.summary()
    order = [p.flow_id for p in delivered]
    print(f"\ndelivered : {len(delivered)}/50 packets")
    print(f"in order  : {order == sorted(order)}")
    print(f"losses    : {stats['loss_events']} detected, "
          f"{stats['recovered']} recovered, {stats['timeouts']} timed out")
    delays = plink.receiver.stats.retx_delays_ns
    if delays:
        print(f"recovery  : {delays[0] / 1e3:.2f} us after detection "
              f"(sub-RTT: a datacenter RTT is ~30 us)")
    print(f"tx buffer : peak {stats['tx_buffer']['max'] / 1e3:.1f} KB, "
          f"rx buffer: peak {stats['rx_buffer']['max'] / 1e3:.1f} KB")
    assert order == list(range(50)), "LinkGuardian must mask the loss in order"
    print("\nThe transport layer never saw the corruption loss.")


if __name__ == "__main__":
    main()
