#!/usr/bin/env python3
"""Tail latency of datacenter RPCs over a corrupting link.

The paper's motivating workload: most datacenter flows fit in a single
packet (143 B is the most frequent Google RPC size), so a corruption
loss is usually a *tail* loss that costs the transport a full
retransmission timeout — 1 ms where the healthy RTT is ~30 us.

This example measures the FCT distribution of 143 B DCTCP and RDMA
WRITE messages over a link with an (inflated, so a small run resolves
the tail) corruption loss rate, with and without LinkGuardian — the
Figure 10 experiment at example scale.

Run:  python examples/tail_latency_rpc.py
"""

from repro.experiments.fct import run_fct_experiment

TRIALS = 800
LOSS_RATE = 2e-2  # inflated from the paper's 1e-3 so ~15 trials are hit


def main() -> None:
    print(f"143 B messages, {TRIALS} trials, loss rate {LOSS_RATE:g}")
    print(f"{'transport':9s} {'scenario':8s} {'p50 (us)':>9s} {'p99 (us)':>9s} "
          f"{'p99.9 (us)':>11s} {'max (us)':>9s}")
    for transport in ("dctcp", "rdma"):
        for scenario in ("noloss", "loss", "lg", "lgnb"):
            result = run_fct_experiment(
                transport=transport,
                flow_size=143,
                n_trials=TRIALS,
                scenario=scenario,
                loss_rate=LOSS_RATE,
                seed=4,
            )
            fcts = result.fcts_us
            print(f"{transport:9s} {scenario:8s} {result.pct(50):9.1f} "
                  f"{result.pct(99):9.1f} {result.pct(99.9):11.1f} "
                  f"{fcts.max():9.1f}")
        loss = run_fct_experiment(transport, 143, TRIALS, "loss",
                                  loss_rate=LOSS_RATE, seed=4)
        lg = run_fct_experiment(transport, 143, TRIALS, "lg",
                                loss_rate=LOSS_RATE, seed=4)
        gain = loss.pct(99.9) / lg.pct(99.9)
        print(f"--> {transport}: LinkGuardian improves p99.9 FCT by "
              f"{gain:.0f}x (paper: 51x TCP / 66x RDMA at 1e-3)\n")


if __name__ == "__main__":
    main()
