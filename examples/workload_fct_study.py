#!/usr/bin/env python3
"""Workload-driven FCT study: Google RPC traffic over a corrupting link.

Instead of back-to-back fixed-size trials, this example replays an
open-loop Poisson workload drawn from the Google all-RPC flow-size
distribution (Figure 2) — many concurrent DCTCP flows sharing the
protected link at a configurable offered load — and compares the FCT
distribution with and without LinkGuardian.

Run:  python examples/workload_fct_study.py
"""

import numpy as np

from repro.experiments.testbed import build_testbed
from repro.transport.congestion import DctcpCC
from repro.transport.tcp import TcpReceiver, TcpSender
from repro.units import MS
from repro.workloads import GOOGLE_ALL_RPC, PoissonFlowGenerator

N_FLOWS = 600
LOAD = 0.25
LOSS_RATE = 1e-2  # inflated so a small run resolves the tail


def run_case(lg_active: bool, seed: int = 8):
    testbed = build_testbed(
        rate_gbps=25, loss_rate=LOSS_RATE, lg_active=lg_active, seed=seed,
    )
    src = testbed.add_host("h4", "tx")
    dst = testbed.add_host("h8", "rx")
    generator = PoissonFlowGenerator(
        GOOGLE_ALL_RPC, testbed.plink.rate_bps, LOAD,
        testbed.rng.stream("workload"),
    )
    arrivals = generator.generate(N_FLOWS, start_id=1)
    done = []
    sizes = {a.flow_id: a.size_bytes for a in arrivals}
    for arrival in arrivals:
        sender = TcpSender(
            testbed.sim, src, "h8", arrival.flow_id, arrival.size_bytes,
            cc=DctcpCC(), on_complete=done.append,
        )
        TcpReceiver(testbed.sim, dst, "h4", arrival.flow_id)
        testbed.sim.schedule_at(arrival.time_ns, sender.start)
    testbed.sim.run(until=arrivals[-1].time_ns + 400 * MS)
    fcts = np.array([r.fct_ns / 1e3 for r in done if r.completed])
    # FCT slowdown: completion time relative to a loss-free ideal for the
    # flow's size (base RTT + serialization), the standard workload metric.
    slowdowns = np.array([
        r.fct_ns / (30_000 + sizes[r.flow_id] * 8 / 25)
        for r in done if r.completed
    ])
    return fcts, slowdowns


def main() -> None:
    print(f"{N_FLOWS} Poisson flows, Google all-RPC sizes, load {LOAD:.0%}, "
          f"25G link, loss {LOSS_RATE:g}\n")
    print(f"{'case':12s} {'done':>5s} {'p50 (us)':>9s} {'p99 (us)':>9s} "
          f"{'p99.9 (us)':>11s} {'p99.9 slowdown':>15s}")
    results = {}
    for label, lg_active in (("loss only", False), ("with LG", True)):
        fcts, slowdowns = run_case(lg_active)
        results[label] = slowdowns
        print(f"{label:12s} {len(fcts):5d} {np.percentile(fcts, 50):9.1f} "
              f"{np.percentile(fcts, 99):9.1f} "
              f"{np.percentile(fcts, 99.9):11.1f} "
              f"{np.percentile(slowdowns, 99.9):15.1f}x")
    gain = (np.percentile(results["loss only"], 99.9)
            / np.percentile(results["with LG"], 99.9))
    print(f"\nLinkGuardian improves the p99.9 FCT *slowdown* of the RPC "
          f"workload by {gain:.0f}x — the corrupted packets were almost "
          f"always tail packets of (mostly single-packet) flows whose "
          f"unprotected recovery needs a ~1 ms RTO.")


if __name__ == "__main__":
    main()
