#!/usr/bin/env python3
"""Automatic corruption detection and LinkGuardian activation.

An operator never flips LinkGuardian on by hand: the corruptd daemon
(paper Appendix C) polls port counters every second, estimates the loss
rate over a moving window of frames, and — when the link crosses the
healthy-BER threshold — publishes a notification that activates
LinkGuardian on the upstream switch, sized by Equation 2.

This example dials corruption onto a healthy link mid-run (the VOA in
the paper's testbed) and watches the control loop close.

Run:  python examples/corruptd_monitoring.py
"""

import numpy as np

from repro.experiments.testbed import build_testbed
from repro.monitor.corruptd import Corruptd, PubSubBus
from repro.packets.packet import Packet
from repro.phy.loss import BernoulliLoss
from repro.units import MS, MTU_FRAME


def main() -> None:
    testbed = build_testbed(rate_gbps=100, lg_active=False)
    sim = testbed.sim

    bus = PubSubBus(sim)
    daemon = Corruptd(
        sim, testbed.plink, bus,
        poll_interval_ns=2 * MS,          # accelerated from 1 s
        window_frames=20_000,
    )
    daemon.start()

    # A sink and a steady packet stream across the link.
    from repro.switchsim.link import Link

    delivered = []
    testbed.receiver_switch.add_port("sink", testbed.plink.rate_bps,
                                     Link(sim, 10, receiver=delivered.append))
    testbed.receiver_switch.set_route("server", "sink")
    testbed.sender_switch.set_route("server", testbed.plink.forward_port_name)

    count = {"n": 0}

    def inject():
        packet = Packet(size=MTU_FRAME, dst="server", flow_id=count["n"])
        count["n"] += 1
        testbed.sender_switch.forward(packet)
        if sim.now < 120 * MS:
            sim.schedule(2_000, inject)

    sim.schedule(0, inject)

    # At t = 30 ms the fiber starts corrupting at 5e-3 (a dirty connector).
    def start_corrupting():
        print(f"t={sim.now / MS:6.1f} ms  fiber starts corrupting (loss 5e-3)")
        testbed.plink.set_loss(
            BernoulliLoss(5e-3, np.random.default_rng(1)))

    sim.schedule_at(30 * MS, start_corrupting)
    sim.run(until=125 * MS)

    notice = daemon.notices[0] if daemon.notices else None
    print(f"t={notice.detected_at_ns / MS:6.1f} ms  corruptd detected loss rate "
          f"{notice.loss_rate:.2e} and published to {daemon.channel!r}")
    print(f"          LinkGuardian active: {testbed.plink.active} "
          f"(N={testbed.plink.sender.n_copies} retx copies)")
    stats = testbed.plink.summary()
    print(f"\nafter activation: {stats['loss_events']} losses detected, "
          f"{stats['recovered']} recovered, {stats['timeouts']} escaped")
    print(f"delivered {len(delivered)}/{count['n']} injected packets "
          f"(gap = losses before activation)")


if __name__ == "__main__":
    main()
