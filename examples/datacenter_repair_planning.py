#!/usr/bin/env python3
"""Fleet-scale repair planning: CorrOpt alone vs LinkGuardian + CorrOpt.

The paper's §4.8 deployment study: on a Facebook-fabric topology, links
start corrupting following the Appendix D trace model; CorrOpt disables
a corrupting link for repair only when the capacity constraint (minimum
fraction of ToR-to-spine paths) survives.  Links it cannot disable keep
hurting traffic — unless LinkGuardian masks them at a small effective-
speed cost.

This example runs both policies for 120 simulated days on a reduced
fabric and prints the headline numbers behind Figures 15 and 16.

Run:  python examples/datacenter_repair_planning.py
"""

import numpy as np

from repro.experiments.deployment import run_deployment_comparison


def main() -> None:
    for constraint in (0.50, 0.75):
        comparison = run_deployment_comparison(
            capacity_constraint=constraint,
            n_pods=6, tors_per_pod=12, fabrics_per_pod=4, spine_uplinks=12,
            duration_days=120, mttf_hours=2_000,  # accelerated aging
            seed=17,
        )
        gain = comparison.penalty_gain()
        decrease = comparison.capacity_decrease()
        summary = comparison.summary()
        print(f"capacity constraint {constraint:.0%}  "
              f"({comparison.vanilla.corruption_events} corruption events)")
        print(f"  penalty (mean): CorrOpt {comparison.vanilla.total_penalty.mean():.3e}"
              f"  vs  +LinkGuardian {comparison.combined.total_penalty.mean():.3e}")
        print(f"  gain in total penalty: median {np.median(gain):.1e}, "
              f"p90 {np.percentile(gain, 90):.1e} "
              f"(no gain {summary['fraction_no_gain']:.0%} of the time)")
        print(f"  links blocked from repair: CorrOpt {summary['vanilla_blocked']}, "
              f"combined {summary['combined_blocked']}")
        print(f"  cost: worst-case pod capacity decrease "
              f"{decrease.max():.2f}% (paper: ~0.22%)")
        print(f"  concurrent LinkGuardian links: max {summary['max_lg_links']} "
              f"({summary['max_lg_links_per_pod']} per pod; paper expects 2-4)\n")


if __name__ == "__main__":
    main()
